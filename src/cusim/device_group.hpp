// A fleet of simulated GPUs behind one host. Each Device keeps its own
// timeline, buffers, and (for N > 1) a private host ThreadPool sized
// global_threads/N, so N shards execute functionally in parallel from N
// host threads without sharing the single-submitter global pool.
//
// The merged simulation replays every device's captured timeline on one
// clock: device-side resources (the Hyper-Q concurrent-kernel window,
// device memory bandwidth) stay per-device, but all PCIe copies contend
// for the shared host root complex — H2D/D2H transfers to different
// devices split host link bandwidth instead of overlapping for free.
// For a single device the merged schedule is bit-identical to
// Timeline::simulate(), so fleet numbers degrade gracefully to the
// single-device ones.
#pragma once

#include <memory>
#include <vector>

#include "core/thread_pool.hpp"
#include "cusim/device.hpp"
#include "cusim/pool.hpp"

namespace cusfft::cusim {

struct CaptureProfile;  // profiler.hpp

/// All device timelines replayed on one shared clock (t=0 at the group's
/// begin_capture). Index-aligned with the group's devices.
struct FleetSchedule {
  double makespan_s = 0;  // fleet-level finish (max over devices)
  /// Per-device item schedules, index-aligned with that device's
  /// timeline().items() — same shape Timeline::schedule() has, but with
  /// cross-device PCIe contention applied.
  std::vector<std::vector<ItemSchedule>> items;
  std::vector<double> finish_s;      // per device: last item finish (0 idle)
  std::vector<double> busy_s;        // per device: summed kernel spans
  /// Per device: extra time its PCIe copies spent because other devices'
  /// copies shared the host link (merged duration minus the device's own
  /// contention-free schedule). Zero for a single-device group.
  std::vector<double> pcie_stall_s;
};

class DeviceGroup {
 public:
  /// One Device per spec, in order. For size() > 1 each device gets a
  /// private ThreadPool of max(1, ThreadPool::global().size()/N) workers.
  explicit DeviceGroup(std::vector<perfmodel::GpuSpec> specs);
  /// N homogeneous devices (default: the paper's K20x).
  explicit DeviceGroup(std::size_t count,
                       perfmodel::GpuSpec spec = perfmodel::GpuSpec::k20x());

  std::size_t size() const { return devices_.size(); }
  Device& device(std::size_t i) { return *devices_[i].dev; }
  const Device& device(std::size_t i) const { return *devices_[i].dev; }

  /// Starts a fresh measured region on every device and snapshots the
  /// global BufferPool for the fleet-level allocation delta. Call before
  /// fanning shards out; every device shares the capture's t=0.
  void begin_capture();

  /// Replays all captured timelines on the shared clock (see file
  /// comment). Safe to call repeatedly; recomputes each time.
  FleetSchedule simulate();

  /// Merged observability record: one CaptureProfile whose spans/phases
  /// carry a device index, with one `lanes` entry per device — the
  /// chrome-trace export renders one track group (pid) per device on the
  /// shared time origin.
  CaptureProfile end_capture();

  /// BufferPool::global() stats at the last begin_capture() (group-level;
  /// per-device snapshots are racy while shards run concurrently).
  const BufferPool::Stats& pool_stats_at_capture() const {
    return pool_at_capture_;
  }

 private:
  struct PerDevice {
    std::unique_ptr<Device> dev;
    std::unique_ptr<ThreadPool> pool;  // private team; null for N == 1
  };
  std::vector<PerDevice> devices_;
  BufferPool::Stats pool_at_capture_;
};

}  // namespace cusfft::cusim
