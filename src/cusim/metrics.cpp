#include "cusim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "cusim/pool.hpp"

namespace cusfft::cusim {

namespace metrics_detail {

std::size_t shard_index() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot & (kShards - 1);
}

}  // namespace metrics_detail

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram() = default;

std::size_t Histogram::bucket_index(double v) {
  // Decompose v = m * 2^e with m in [0.5, 1): the octave is e-1 and the
  // linear sub-bucket within it is floor((2m - 1) * kSubBuckets). Bucket 0
  // is the underflow bucket (v < 2^kMinExp, including 0, negatives, NaN).
  if (!(v >= std::ldexp(1.0, kMinExp))) return 0;
  if (v >= std::ldexp(1.0, kMaxExp)) return kBuckets - 1;
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  const int octave = (e - 1) - kMinExp;
  int sub = static_cast<int>((2.0 * m - 1.0) * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return 1 + static_cast<std::size_t>(octave) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double Histogram::bucket_upper(std::size_t index) {
  if (index == 0) return std::ldexp(1.0, kMinExp);
  if (index >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  const std::size_t grid = index - 1;
  const int octave = static_cast<int>(grid / kSubBuckets);
  const int sub = static_cast<int>(grid % kSubBuckets);
  // Upper edge of linear sub-bucket `sub` inside octave [2^o, 2^(o+1)).
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                    kMinExp + octave);
}

void Histogram::observe(double v) {
  Shard& s = shards_[metrics_detail::shard_index()];
  s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  metrics_detail::atomic_add(s.sum, v);
  // First observation on a shard seeds min/max; count is bumped last so a
  // concurrent snapshot that sees count > 0 also sees a seeded min.
  if (s.count.load(std::memory_order_relaxed) == 0) {
    s.min.store(v, std::memory_order_relaxed);
    s.max.store(v, std::memory_order_relaxed);
  } else {
    metrics_detail::atomic_min(s.min, v);
    metrics_detail::atomic_max(s.max, v);
  }
  s.count.fetch_add(1, std::memory_order_release);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  std::array<u64, kBuckets> merged{};
  bool seeded = false;
  for (const Shard& s : shards_) {
    const u64 n = s.count.load(std::memory_order_acquire);
    if (n == 0) continue;
    out.count += n;
    out.sum += s.sum.load(std::memory_order_relaxed);
    const double lo = s.min.load(std::memory_order_relaxed);
    const double hi = s.max.load(std::memory_order_relaxed);
    if (!seeded) {
      out.min = lo;
      out.max = hi;
      seeded = true;
    } else {
      out.min = std::min(out.min, lo);
      out.max = std::max(out.max, hi);
    }
    for (std::size_t i = 0; i < kBuckets; ++i)
      merged[i] += s.buckets[i].load(std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < kBuckets; ++i)
    if (merged[i] != 0) out.buckets.emplace_back(bucket_upper(i), merged[i]);
  return out;
}

void Histogram::zero() {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const u64 rank =
      std::max<u64>(1, static_cast<u64>(std::ceil(q * static_cast<double>(
                                                          count))));
  u64 seen = 0;
  for (const auto& [upper, n] : buckets) {
    seen += n;
    if (seen >= rank) return std::min(upper, max);
  }
  return max;
}

// ---------------------------------------------------------------------------
// Registry

namespace {

/// Shortest decimal form that round-trips a double (printf %.17g trimmed),
/// shared by both exposition formats so snapshots are byte-deterministic.
std::string format_number(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    double back = 0;
    std::sscanf(buf, "%lf", &back);
    if (back == v) break;
  }
  return buf;
}

/// Splits `cusfft_foo_ms{device="0"}` into the Prometheus family name and
/// the raw label body (empty when unlabeled).
void split_labels(const std::string& name, std::string* base,
                  std::string* labels) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

/// `base{labels,extra}` — appends one more label to a (possibly empty)
/// label body.
std::string with_label(const std::string& base, const std::string& labels,
                       const std::string& extra) {
  std::string body = labels;
  if (!body.empty() && !extra.empty()) body += ",";
  body += extra;
  if (body.empty()) return base;
  return base + "{" + body + "}";
}

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lk(mu_);
  if (gauges_.count(name) || histograms_.count(name))
    throw std::logic_error("metric '" + name +
                           "' already registered as a different kind");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lk(mu_);
  if (counters_.count(name) || histograms_.count(name))
    throw std::logic_error("metric '" + name +
                           "' already registered as a different kind");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lk(mu_);
  if (counters_.count(name) || gauges_.count(name))
    throw std::logic_error("metric '" + name +
                           "' already registered as a different kind");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::label(const std::string& name,
                                   const std::string& key,
                                   const std::string& value) {
  std::string base, labels;
  split_labels(name, &base, &labels);
  return with_label(base, labels, key + "=\"" + value + "\"");
}

void MetricsRegistry::add_collector(Collector c) {
  std::lock_guard lk(mu_);
  collectors_.push_back(std::move(c));
}

void MetricsRegistry::run_collectors(Snapshot& s) const {
  Snapshot pulled;
  for (const auto& c : collectors_) c(pulled);
  // Collector counters are process-lifetime absolutes (the underlying
  // subsystem owns them and cannot be zeroed from here); subtract the
  // baseline recorded at the last reset() so they restart from zero like
  // every registry-owned counter.
  for (auto& [name, v] : pulled.counters) {
    const auto it = collector_base_.find(name);
    const u64 base = it == collector_base_.end() ? 0 : it->second;
    s.counters[name] = v >= base ? v - base : 0;
  }
  for (auto& [name, v] : pulled.gauges) s.gauges[name] = v;
  for (auto& [name, h] : pulled.histograms) s.histograms[name] = std::move(h);
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lk(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  run_collectors(s);
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard lk(mu_);
  for (auto& [name, c] : counters_) c->zero();
  for (auto& [name, g] : gauges_) g->zero();
  for (auto& [name, h] : histograms_) h->zero();
  Snapshot pulled;
  for (const auto& c : collectors_) c(pulled);
  collector_base_.clear();
  for (const auto& [name, v] : pulled.counters) collector_base_[name] = v;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = [] {
    auto* r = new MetricsRegistry();
    r->add_collector([](Snapshot& s) {
      const BufferPool::Stats ps = BufferPool::global().stats();
      s.counters["cusfft_pool_misses_total"] = ps.allocations;
      s.counters["cusfft_pool_hits_total"] = ps.reuses;
      s.counters["cusfft_pool_bytes_allocated_total"] = ps.bytes_allocated;
      s.counters["cusfft_pool_bytes_recycled_total"] = ps.bytes_reused;
      s.gauges["cusfft_pool_bytes_pooled"] =
          static_cast<double>(ps.bytes_pooled);
    });
    return r;
  }();
  return *reg;
}

// ---------------------------------------------------------------------------
// Exposition

std::string MetricsRegistry::Snapshot::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"cusfft-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": " + std::to_string(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": " + format_number(v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    json_escape_into(out, name);
    out += "\": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + format_number(h.sum);
    out += ", \"min\": " + format_number(h.min);
    out += ", \"max\": " + format_number(h.max);
    out += ", \"p50\": " + format_number(h.percentile(0.50));
    out += ", \"p95\": " + format_number(h.percentile(0.95));
    out += ", \"p99\": " + format_number(h.percentile(0.99));
    out += ", \"buckets\": [";
    bool bfirst = true;
    for (const auto& [upper, n] : h.buckets) {
      if (!bfirst) out += ", ";
      bfirst = false;
      // +Inf is not valid JSON; the overflow bucket serializes its bound
      // as a string, mirroring Prometheus's le="+Inf".
      if (std::isinf(upper))
        out += "{\"le\": \"+Inf\", \"count\": " + std::to_string(n) + "}";
      else
        out += "{\"le\": " + format_number(upper) +
               ", \"count\": " + std::to_string(n) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsRegistry::Snapshot::to_prometheus() const {
  std::string out;
  out.reserve(4096);
  std::string base, labels, last_base;
  for (const auto& [name, v] : counters) {
    split_labels(name, &base, &labels);
    if (base != last_base) {
      out += "# TYPE " + base + " counter\n";
      last_base = base;
    }
    out += name + " " + std::to_string(v) + "\n";
  }
  last_base.clear();
  for (const auto& [name, v] : gauges) {
    split_labels(name, &base, &labels);
    if (base != last_base) {
      out += "# TYPE " + base + " gauge\n";
      last_base = base;
    }
    out += name + " " + format_number(v) + "\n";
  }
  last_base.clear();
  for (const auto& [name, h] : histograms) {
    split_labels(name, &base, &labels);
    if (base != last_base) {
      out += "# TYPE " + base + " histogram\n";
      last_base = base;
    }
    u64 cum = 0;
    for (const auto& [upper, n] : h.buckets) {
      cum += n;
      if (std::isinf(upper)) continue;  // folded into the +Inf line below
      out += with_label(base + "_bucket", labels,
                        "le=\"" + format_number(upper) + "\"") +
             " " + std::to_string(cum) + "\n";
    }
    out += with_label(base + "_bucket", labels, "le=\"+Inf\"") + " " +
           std::to_string(h.count) + "\n";
    out += with_label(base + "_sum", labels, "") + " " + format_number(h.sum) +
           "\n";
    out += with_label(base + "_count", labels, "") + " " +
           std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace cusfft::cusim
