#include "cusim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace cusfft::cusim {

void WarpTracer::reset(std::size_t transaction_bytes, LaunchArena* arena) {
  accesses_.reset(arena);
  sorted_.reset(arena);
  counts_.reset(arena);
  segs_.reset(arena);
  max_slot_ = 0;
  shared_ = 0;
  tx_bytes_ = transaction_bytes;
}

void WarpTracer::clear() {
  accesses_.clear();
  max_slot_ = 0;
  shared_ = 0;
}

void WarpTracer::on_access(u32 slot, u64 addr, u32 bytes, bool atomic) {
  accesses_.push_back(Access{slot, addr, bytes, atomic});
  max_slot_ = std::max(max_slot_, slot);
}

WarpTotals WarpTracer::finalize() {
  WarpTotals out;
  out.shared_accesses = shared_;
  const std::size_t n = accesses_.size();
  if (n == 0) return out;

  // Stable counting sort by slot (equivalent to the stable_sort this
  // replaced: lane order within a slot is preserved).
  const std::size_t slots = static_cast<std::size_t>(max_slot_) + 1;
  counts_.resize_uninit(slots + 1);
  u32* off = counts_.begin();
  std::memset(off, 0, (slots + 1) * sizeof(u32));
  for (const Access& a : accesses_) ++off[a.slot + 1];
  for (std::size_t s = 0; s < slots; ++s) off[s + 1] += off[s];
  sorted_.resize_uninit(n);
  Access* sorted = sorted_.begin();
  for (const Access& a : accesses_) sorted[off[a.slot]++] = a;

  std::size_t i = 0;
  while (i < n) {
    const u32 slot = sorted[i].slot;
    // Size the segment scratch for this slot's group.
    std::size_t group_end = i, cap = 0;
    for (; group_end < n && sorted[group_end].slot == slot; ++group_end) {
      const Access& a = sorted[group_end];
      cap += static_cast<std::size_t>((a.addr + a.bytes - 1) / tx_bytes_ -
                                      a.addr / tx_bytes_) +
             1;
    }
    segs_.resize_uninit(cap);
    u64* segs = segs_.begin();
    std::size_t nseg = 0;
    double bytes = 0;
    for (; i < group_end; ++i) {
      const Access& a = sorted[i];
      bytes += a.bytes;
      const u64 first = a.addr / tx_bytes_;
      const u64 last = (a.addr + a.bytes - 1) / tx_bytes_;
      for (u64 s = first; s <= last; ++s) segs[nseg++] = s;
      if (a.atomic) out.atomic_ops += 1;
    }
    std::sort(segs, segs + nseg);
    const double tx =
        static_cast<double>(std::unique(segs, segs + nseg) - segs);
    const double min_tx =
        std::max(1.0, std::ceil(bytes / static_cast<double>(tx_bytes_)));
    out.useful_bytes += bytes;
    if (tx <= 2.0 * min_tx)
      out.coalesced_tx += tx;
    else
      out.random_tx += tx;
  }
  return out;
}

void KernelAccum::reset(std::size_t transaction_bytes, u64 sample_stride) {
  arena_.reset();
  tracer_.reset(transaction_bytes, &arena_);
  warps_.reset(&arena_);
  atomic_conflicts_.clear();
  stride_ = std::max<u64>(1, sample_stride);
}

void KernelAccum::fold_warp(u64 warp_index) {
  warps_.push_back({warp_index, tracer_.finalize()});
}

void KernelAccum::on_atomic_addr(u64 addr) { ++atomic_conflicts_[addr]; }

void KernelAccum::absorb(KernelAccum& other) {
  warps_.append(other.warps_.begin(), other.warps_.size());
  other.warps_.clear();
  for (const auto& [addr, cnt] : other.atomic_conflicts_)
    atomic_conflicts_[addr] += cnt;
  other.atomic_conflicts_.clear();
}

WarpTotals KernelAccum::scaled_totals() {
  std::sort(warps_.begin(), warps_.end(),
            [](const auto& a, const auto& b) { return a.index < b.index; });
  WarpTotals s;
  for (const auto& [idx, t] : warps_) {
    s.coalesced_tx += t.coalesced_tx;
    s.random_tx += t.random_tx;
    s.useful_bytes += t.useful_bytes;
    s.atomic_ops += t.atomic_ops;
    s.shared_accesses += t.shared_accesses;
  }
  const double m = static_cast<double>(stride_);
  s.coalesced_tx *= m;
  s.random_tx *= m;
  s.useful_bytes *= m;
  s.atomic_ops *= m;
  s.shared_accesses *= m;
  return s;
}

double KernelAccum::max_atomic_conflict() const {
  u32 worst = 0;
  for (const auto& [addr, cnt] : atomic_conflicts_)
    worst = std::max(worst, cnt);
  return static_cast<double>(worst) * static_cast<double>(stride_);
}

}  // namespace cusfft::cusim
