#include "cusim/trace.hpp"

#include <algorithm>

namespace cusfft::cusim {

void WarpTracer::reset(std::size_t transaction_bytes) {
  accesses_.clear();
  shared_ = 0;
  tx_bytes_ = transaction_bytes;
}

void WarpTracer::on_access(u32 slot, u64 addr, u32 bytes, bool atomic) {
  accesses_.push_back(Access{slot, addr, bytes, atomic});
}

WarpTotals WarpTracer::finalize() {
  WarpTotals out;
  out.shared_accesses = shared_;
  if (accesses_.empty()) return out;
  std::stable_sort(accesses_.begin(), accesses_.end(),
                   [](const Access& a, const Access& b) {
                     return a.slot < b.slot;
                   });
  std::vector<u64> segs;
  segs.reserve(64);
  std::size_t i = 0;
  while (i < accesses_.size()) {
    const u32 slot = accesses_[i].slot;
    segs.clear();
    double bytes = 0;
    for (; i < accesses_.size() && accesses_[i].slot == slot; ++i) {
      const auto& a = accesses_[i];
      bytes += a.bytes;
      const u64 first = a.addr / tx_bytes_;
      const u64 last = (a.addr + a.bytes - 1) / tx_bytes_;
      for (u64 s = first; s <= last; ++s) segs.push_back(s);
      if (a.atomic) out.atomic_ops += 1;
    }
    std::sort(segs.begin(), segs.end());
    const double tx = static_cast<double>(
        std::unique(segs.begin(), segs.end()) - segs.begin());
    const double min_tx =
        std::max(1.0, std::ceil(bytes / static_cast<double>(tx_bytes_)));
    out.useful_bytes += bytes;
    if (tx <= 2.0 * min_tx)
      out.coalesced_tx += tx;
    else
      out.random_tx += tx;
  }
  return out;
}

void KernelAccum::reset(std::size_t transaction_bytes, u64 sample_stride) {
  tracer_.reset(transaction_bytes);
  warps_.clear();
  atomic_conflicts_.clear();
  stride_ = std::max<u64>(1, sample_stride);
}

void KernelAccum::fold_warp(u64 warp_index) {
  warps_.emplace_back(warp_index, tracer_.finalize());
}

void KernelAccum::on_atomic_addr(u64 addr) { ++atomic_conflicts_[addr]; }

void KernelAccum::absorb(KernelAccum& other) {
  warps_.insert(warps_.end(), other.warps_.begin(), other.warps_.end());
  other.warps_.clear();
  for (const auto& [addr, cnt] : other.atomic_conflicts_)
    atomic_conflicts_[addr] += cnt;
  other.atomic_conflicts_.clear();
}

WarpTotals KernelAccum::scaled_totals() {
  std::sort(warps_.begin(), warps_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  WarpTotals s;
  for (const auto& [idx, t] : warps_) {
    s.coalesced_tx += t.coalesced_tx;
    s.random_tx += t.random_tx;
    s.useful_bytes += t.useful_bytes;
    s.atomic_ops += t.atomic_ops;
    s.shared_accesses += t.shared_accesses;
  }
  const double m = static_cast<double>(stride_);
  s.coalesced_tx *= m;
  s.random_tx *= m;
  s.useful_bytes *= m;
  s.atomic_ops *= m;
  s.shared_accesses *= m;
  return s;
}

double KernelAccum::max_atomic_conflict() const {
  u32 worst = 0;
  for (const auto& [addr, cnt] : atomic_conflicts_) worst = std::max(worst, cnt);
  return static_cast<double>(worst) * static_cast<double>(stride_);
}

}  // namespace cusfft::cusim
