// The simulated GPU. Kernels launch with a grid/block shape and execute
// functionally (every thread really runs, on real data) while sampled warps
// feed the transaction-level performance model. Results: bit-exact outputs
// plus modeled durations on the configured GpuSpec (default: the paper's
// Tesla K20x, Table I).
//
// Host execution model: thread blocks are independent in CUDA semantics, so
// the functional sweep fans blocks out over the process-wide ThreadPool
// (contiguous block ranges per worker). Each worker traces into its own
// KernelAccum; after the grid drains they are merged in warp-index order,
// which reproduces the sequential fold bit for bit — modeled counters and
// durations are identical whichever path ran. CUSIM_SEQUENTIAL=1 (or
// set_parallel(false), or LaunchCfg::sequential for kernels whose functional
// simulation depends on cross-block execution order) forces the sequential
// sweep.
#pragma once

#include <algorithm>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "cusim/buffer.hpp"
#include "cusim/thread_ctx.hpp"
#include "cusim/timeline.hpp"
#include "perfmodel/gpu_model.hpp"

namespace cusfft::cusim {

struct CaptureProfile;  // profiler.hpp

/// A named phase boundary inside a capture (cudaEvent + label). A
/// device-wide annotation's phase spans from its event time to the next
/// device-wide annotation's (or the makespan). A stream-scoped annotation
/// (pipelined batches) spans to the next annotation on the same stream, or
/// to its explicit end event when one was set via Device::close_phase.
struct PhaseAnnotation {
  std::string name;
  std::size_t event_id = 0;
  StreamId stream = 0;
  bool scoped = false;
  std::ptrdiff_t end_event = -1;  // explicit close; -1 = next in scope
};

/// Kernel launch shape, CUDA-style <<<blocks, threads, stream>>>.
struct LaunchCfg {
  const char* name = "kernel";
  std::size_t blocks = 1;
  std::size_t threads_per_block = 256;
  StreamId stream = 0;
  /// Kernels whose *functional simulation* relies on blocks executing in
  /// order (closure-state shared histograms, floating-point atomics whose
  /// rounding must stay deterministic) set this to opt out of the
  /// block-parallel host path. Modeled time is unaffected either way.
  bool sequential = false;

  /// Opt-in captured-graph replay. The first launch of a given
  /// (graph domain, name, graph_key, blocks, threads_per_block) tuple runs
  /// fully traced and its extrapolated memory counters are recorded; later
  /// identical launches skip warp tracing entirely — the functional sweep
  /// still runs on real data (outputs stay bit-exact) and the timeline item
  /// is rebuilt from the record. Only mark kernels whose *access pattern*
  /// is fully determined by shape + graph_key: pool buffers sit on
  /// 256B-aligned simulated addresses with guard gaps, so a rebind to a
  /// different buffer shifts every address by a multiple of the 128B
  /// transaction size and cannot change segment counts. Kernels whose
  /// addresses depend on data values must stay off this path.
  bool cacheable = false;
  /// Disambiguates same-name, same-shape launches whose access pattern
  /// differs through closure parameters (round index, chunk, stage width).
  u64 graph_key = 0;

  /// Fluent opt-in: `for_elements(...).cache(key)` marks the launch
  /// cacheable under `key`.
  LaunchCfg& cache(u64 key) {
    cacheable = true;
    graph_key = key;
    return *this;
  }

  /// Convenience: shape for one thread per element.
  static LaunchCfg for_elements(const char* name, std::size_t count,
                                std::size_t block = 256, StreamId s = 0) {
    LaunchCfg c;
    c.name = name;
    c.threads_per_block = block;
    c.blocks = (count + block - 1) / std::max<std::size_t>(1, block);
    c.stream = s;
    return c;
  }
};

/// Aggregated per-kernel-name statistics for a capture region.
struct KernelReport {
  std::size_t launches = 0;
  perfmodel::KernelCounters counters;  // summed
  double solo_s = 0;                   // summed isolated durations
};

/// Captured-graph replay mode (CUSFFT_GRAPH environment variable):
/// "0" disables the cache (every launch traces), "verify" traces every
/// launch anyway and cross-checks cache hits against the fresh counters
/// (throws on any mismatch — the CI belt-and-braces mode), anything else
/// (or unset) enables replay.
enum class GraphMode { kOff, kOn, kVerify };

/// One recorded launch: the trace-derived counters that replay restores
/// without re-tracing. Shape-derived counters (blocks/threads/warps) and
/// flops (recomputed by the functional sweep) are not stored.
struct LaunchRecord {
  WarpTotals totals;
  double max_atomic_conflict = 0;
};

/// The captured launch graph of one Device: records keyed by
/// (domain salt, kernel name, graph_key, blocks, threads_per_block), plus
/// hit/record counters for tests and diagnostics.
struct LaunchGraph {
  /// `const void*` is the kernel-name literal's address — stable for the
  /// process lifetime; literal duplication across TUs can only cause a
  /// redundant record, never a wrong hit (the bytes match the pointer).
  using Key = std::tuple<u64, const void*, u64, u64, u64>;

  struct Stats {
    u64 records = 0;   // first-sight captures
    u64 replays = 0;   // launches served from a record (tracing skipped)
    u64 verified = 0;  // verify-mode cross-checks that passed
  };

  std::map<Key, LaunchRecord> records;
  Stats stats;
};

class Device {
 public:
  explicit Device(perfmodel::GpuSpec spec = perfmodel::GpuSpec::k20x());

  /// Publishes the final graph-stats delta and arena high-water marks to
  /// MetricsRegistry::global() (see publish_metrics).
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const perfmodel::GpuModel& model() const { return model_; }
  const perfmodel::GpuSpec& spec() const { return model_.spec(); }

  StreamId create_stream() { return next_stream_++; }

  /// Warp-sampling knob: at most this many warps are traced per launch
  /// (evenly strided); counters extrapolate by the stride. Tests that need
  /// exact counts can raise it. Changing the stride changes extrapolated
  /// counters, so the captured launch graph is dropped.
  void set_max_traced_warps(u64 v) {
    max_traced_warps_ = std::max<u64>(1, v);
    graph_.records.clear();
  }

  /// Namespaces the captured launch graph: records taken under one salt are
  /// invisible under another. Plans hash their parameters/permutations into
  /// the salt, so a plan with different params never replays another plan's
  /// records even when kernel names and shapes coincide.
  void set_graph_domain(u64 salt) { graph_salt_ = salt; }

  /// Replay mode override for tests (the constructor reads CUSFFT_GRAPH).
  void set_graph_mode(GraphMode m) { graph_mode_ = m; }
  GraphMode graph_mode() const { return graph_mode_; }

  /// Drops every captured record (explicit invalidation — use when modeled
  /// behavior outside the key changes).
  void clear_graph_cache() { graph_.records.clear(); }
  const LaunchGraph::Stats& graph_stats() const { return graph_.stats; }

  /// Host-parallel functional execution toggle (default: on unless the
  /// CUSIM_SEQUENTIAL environment variable is set). Both paths produce
  /// bit-identical buffers, counters, and modeled times.
  void set_parallel(bool on) { parallel_ = on; }
  bool parallel() const { return parallel_; }

  /// Grids smaller than this many threads stay on the sequential sweep
  /// (pool dispatch would cost more than it saves).
  void set_min_parallel_threads(std::size_t v) { min_parallel_threads_ = v; }

  /// Pins block-parallel launches to a private ThreadPool instead of
  /// ThreadPool::global(). Required whenever several Devices execute from
  /// different host threads (DeviceGroup): the global pool's task slots are
  /// single-submitter. nullptr (with the flag set) forces the sequential
  /// sweep. The caller keeps ownership; results are bit-identical either way.
  void set_pool(ThreadPool* pool) {
    pool_ = pool;
    own_pool_only_ = true;
  }

  /// Launches `body(ThreadCtx&)` for every thread in the grid. Functional
  /// execution is immediate — sequential or block-parallel on the host
  /// ThreadPool (see the header comment); the modeled duration is queued on
  /// the timeline under cfg.stream either way. Launches marked
  /// LaunchCfg::cacheable may skip warp tracing by replaying a captured
  /// record (the functional sweep always runs; outputs are bit-exact on
  /// every path).
  template <typename F>
  void launch(const LaunchCfg& cfg, F&& body) {
    if (cfg.cacheable && graph_mode_ != GraphMode::kOff) {
      const LaunchGraph::Key key{graph_salt_,
                                 static_cast<const void*>(cfg.name),
                                 cfg.graph_key, cfg.blocks,
                                 cfg.threads_per_block};
      const auto it = graph_.records.find(key);
      if (it != graph_.records.end() && graph_mode_ == GraphMode::kOn) {
        const double flops = replay_sweep(cfg, body);
        finish_replay(cfg, flops, it->second);
        ++graph_.stats.replays;
        return;
      }
      const double flops = traced_sweep(cfg, body);
      if (it != graph_.records.end()) {  // kVerify hit: cross-check
        verify_replay_record(cfg, it->second);
        ++graph_.stats.verified;
      } else {
        graph_.records.emplace(key, record_from_accum());
        ++graph_.stats.records;
      }
      finish_launch(cfg, flops);
      return;
    }
    finish_launch(cfg, traced_sweep(cfg, body));
  }

  /// Host-to-device copy: functional copy plus a PCIe timeline entry.
  template <typename T>
  void upload(DeviceBuffer<T>& dst, std::span<const T> src, StreamId s = 0) {
    if (src.size() != dst.size())
      throw std::invalid_argument("cusim upload: size mismatch");
    std::copy(src.begin(), src.end(), dst.host().begin());
    submit_copy("h2d", src.size() * sizeof(T), s);
  }

  /// Device-to-host copy.
  template <typename T>
  void download(std::span<T> dst, const DeviceBuffer<T>& src, StreamId s = 0) {
    if (src.size() != dst.size())
      throw std::invalid_argument("cusim download: size mismatch");
    std::copy(src.host().begin(), src.host().end(), dst.begin());
    submit_copy("d2h", dst.size() * sizeof(T), s);
  }

  /// Models a PCIe transfer of `bytes` without moving data — for partial
  /// copies out of a larger buffer (e.g. downloading only the num_hits
  /// prefix of a capacity-sized result buffer). The caller moves the bytes
  /// itself via host().
  void note_transfer(const char* name, double bytes, StreamId s = 0) {
    submit_copy(name, bytes, s);
  }

  /// Device-wide synchronization point in the modeled timeline
  /// (cudaDeviceSynchronize): later submissions wait for everything so far.
  /// Functional execution is eager, so this affects only modeled time.
  void sync_point() { timeline_.barrier(); }

  /// cudaEvent-style marker in the modeled timeline. Query with
  /// event_time_ms() after elapsed_model_ms().
  std::size_t record_event() { return timeline_.record_event(); }

  /// Stream-scoped event (cudaEventRecord on a stream): completes when
  /// every item submitted to `s` so far has finished. Same id space as
  /// record_event().
  std::size_t record_event(StreamId s) { return timeline_.record_event(s); }

  /// cudaStreamWaitEvent: later submissions on `s` wait for `event_id` —
  /// the cross-stream dependency edge the pipelined batch path is built on.
  void wait_event(StreamId s, std::size_t event_id) {
    timeline_.wait_event(s, event_id);
  }

  double event_time_ms(std::size_t event_id) {
    timeline_.simulate();
    return timeline_.event_time_s(event_id) * 1e3;
  }

  /// Named phase boundary: records a timeline event and remembers the label
  /// so captures export per-phase spans (profiler.hpp). Returns the event
  /// id (usable with event_time_ms like a plain record_event()).
  std::size_t annotate_phase(std::string name) {
    const std::size_t ev = timeline_.record_event();
    PhaseAnnotation a;
    a.name = std::move(name);
    a.event_id = ev;
    phases_.push_back(std::move(a));
    return ev;
  }

  /// Stream-scoped phase boundary: the phase tracks one stream's work, so
  /// overlapping signals of a pipelined batch keep separate, coherent
  /// phase spans (one phase track per home stream in the trace).
  std::size_t annotate_phase(std::string name, StreamId s) {
    const std::size_t ev = timeline_.record_event(s);
    PhaseAnnotation a;
    a.name = std::move(name);
    a.event_id = ev;
    a.stream = s;
    a.scoped = true;
    phases_.push_back(std::move(a));
    return ev;
  }

  /// Closes the most recent scoped phase on `s` at `end_event` instead of
  /// at the next same-stream annotation — used after a signal's last item
  /// so its final phase does not absorb the idle gap before the stream's
  /// next signal.
  void close_phase(StreamId s, std::size_t end_event) {
    for (auto it = phases_.rbegin(); it != phases_.rend(); ++it)
      if (it->scoped && it->stream == s) {
        it->end_event = static_cast<std::ptrdiff_t>(end_event);
        return;
      }
  }
  const std::vector<PhaseAnnotation>& phase_annotations() const {
    return phases_;
  }

  /// Starts a fresh measured region: clears the timeline, the report, and
  /// the phase annotations, and snapshots the global BufferPool stats so
  /// the capture can report allocation deltas.
  void begin_capture();

  /// Simulates everything submitted since begin_capture() and assembles the
  /// full observability record: per-item trace spans, per-phase spans,
  /// per-kernel counters with derived metrics, and the BufferPool delta.
  /// Does not clear anything — call begin_capture() for the next region.
  CaptureProfile end_capture();

  /// Pushes this device's graph-replay counter deltas and arena high-water
  /// gauges into MetricsRegistry::global(). Devices are transient (stack
  /// objects inside a plan), so instead of a pull collector that would
  /// dangle, every device pushes deltas at capture boundaries and on
  /// destruction; calling it twice is harmless (deltas since last push).
  void publish_metrics();

  /// Simulates everything submitted since begin_capture(); returns the
  /// modeled makespan in milliseconds. Idempotent until the next submit.
  double elapsed_model_ms();

  /// Per-kernel-name aggregation for the capture region.
  const std::map<std::string, KernelReport>& report() const {
    return report_;
  }
  const Timeline& timeline() const { return timeline_; }
  /// Mutable timeline access, for tests that inject raw items (e.g.
  /// dangling deps or cycles) the public API can't produce.
  Timeline& timeline() { return timeline_; }

  /// BufferPool::global() stats as of the last begin_capture() (or device
  /// construction) — the baseline for per-capture allocation deltas.
  const BufferPool::Stats& pool_stats_at_capture() const {
    return pool_at_capture_;
  }

 private:
  /// Picks the pool for this launch, or nullptr for the sequential sweep.
  ThreadPool* launch_pool(const LaunchCfg& cfg) const;

  /// Full functional sweep with warp tracing into accum_. Returns the
  /// grid's self-reported flops. One worker sweeps a contiguous block
  /// range, tracing into its own accumulator; threads of a block run
  /// consecutively on one worker, preserving the intra-block ordering
  /// kernels may rely on.
  template <typename F>
  double traced_sweep(const LaunchCfg& cfg, F&& body) {
    const std::size_t warp = spec().warp_size;
    const std::size_t warps_per_block =
        (cfg.threads_per_block + warp - 1) / warp;
    const u64 total_warps = static_cast<u64>(cfg.blocks) * warps_per_block;
    const u64 stride = std::max<u64>(1, total_warps / max_traced_warps_);
    accum_.reset(spec().mem_transaction_bytes, stride);

    auto run_blocks = [&](KernelAccum& acc, ThreadCtx& ctx, std::size_t b0,
                          std::size_t b1) {
      ctx.block_dim = static_cast<u32>(cfg.threads_per_block);
      ctx.grid_dim = cfg.blocks;
      for (std::size_t b = b0; b < b1; ++b) {
        ctx.block_idx = static_cast<u32>(b);
        u64 warp_index = static_cast<u64>(b) * warps_per_block;
        for (std::size_t w0 = 0; w0 < cfg.threads_per_block;
             w0 += warp, ++warp_index) {
          const bool traced = (warp_index % stride) == 0;
          if (traced) acc.tracer().clear();
          ctx.attach_trace(traced ? &acc.tracer() : nullptr, &acc);
          const std::size_t hi = std::min(cfg.threads_per_block, w0 + warp);
          for (std::size_t tiid = w0; tiid < hi; ++tiid) {
            ctx.begin_thread(static_cast<u32>(tiid));
            body(ctx);
          }
          if (traced) acc.fold_warp(warp_index);
        }
      }
    };

    ThreadPool* pool = launch_pool(cfg);
    if (pool == nullptr) {
      ThreadCtx ctx;
      run_blocks(accum_, ctx, 0, cfg.blocks);
      return ctx.flops();
    }
    const std::size_t slots = pool->size();
    if (worker_accums_.size() < slots) worker_accums_.resize(slots);
    if (worker_ctxs_.size() < slots) worker_ctxs_.resize(slots);
    for (std::size_t s = 0; s < slots; ++s) {
      worker_accums_[s].reset(spec().mem_transaction_bytes, stride);
      worker_ctxs_[s].reset_flops();
    }
    pool->parallel_for_indexed(
        cfg.blocks, [&](std::size_t slot, std::size_t b0, std::size_t b1) {
          run_blocks(worker_accums_[slot], worker_ctxs_[slot], b0, b1);
        });
    double flops = 0;
    for (std::size_t s = 0; s < slots; ++s) {
      accum_.absorb(worker_accums_[s]);
      flops += worker_ctxs_[s].flops();  // integer-valued: order-independent
    }
    return flops;
  }

  /// Lean functional sweep for graph replay: no tracer is attached, so the
  /// per-access hooks reduce to a slot increment. Same parallel/sequential
  /// decision as the traced sweep (launch_pool), so functional outputs —
  /// including any ordering-sensitive accumulations — are bit-identical to
  /// a traced run. Returns the grid's self-reported flops.
  template <typename F>
  double replay_sweep(const LaunchCfg& cfg, F&& body) {
    const std::size_t warp = spec().warp_size;
    auto run_blocks = [&](ThreadCtx& ctx, std::size_t b0, std::size_t b1) {
      ctx.block_dim = static_cast<u32>(cfg.threads_per_block);
      ctx.grid_dim = cfg.blocks;
      ctx.attach_trace(nullptr, nullptr);
      for (std::size_t b = b0; b < b1; ++b) {
        ctx.block_idx = static_cast<u32>(b);
        for (std::size_t w0 = 0; w0 < cfg.threads_per_block; w0 += warp) {
          const std::size_t hi = std::min(cfg.threads_per_block, w0 + warp);
          for (std::size_t tiid = w0; tiid < hi; ++tiid) {
            ctx.begin_thread(static_cast<u32>(tiid));
            body(ctx);
          }
        }
      }
    };

    ThreadPool* pool = launch_pool(cfg);
    if (pool == nullptr) {
      ThreadCtx ctx;
      run_blocks(ctx, 0, cfg.blocks);
      return ctx.flops();
    }
    const std::size_t slots = pool->size();
    if (worker_ctxs_.size() < slots) worker_ctxs_.resize(slots);
    for (std::size_t s = 0; s < slots; ++s) worker_ctxs_[s].reset_flops();
    pool->parallel_for_indexed(
        cfg.blocks, [&](std::size_t slot, std::size_t b0, std::size_t b1) {
          run_blocks(worker_ctxs_[slot], b0, b1);
        });
    double flops = 0;
    for (std::size_t s = 0; s < slots; ++s) flops += worker_ctxs_[s].flops();
    return flops;
  }

  void finish_launch(const LaunchCfg& cfg, double flops);
  /// finish_launch for a replayed launch: counters come from the record
  /// instead of accum_ (flops are live from the functional sweep).
  void finish_replay(const LaunchCfg& cfg, double flops,
                     const LaunchRecord& rec);
  /// Exact comparison of accum_'s fresh counters against a record; throws
  /// std::runtime_error naming the kernel on any mismatch (kVerify mode).
  void verify_replay_record(const LaunchCfg& cfg, const LaunchRecord& rec);
  LaunchRecord record_from_accum();
  /// Shared tail of every launch: costs the counters, queues the timeline
  /// item, folds the per-kernel report.
  void submit_kernel_item(const LaunchCfg& cfg, double flops,
                          const WarpTotals& t, double max_conflict);
  void submit_copy(const char* name, double bytes, StreamId s);

  perfmodel::GpuModel model_;
  Timeline timeline_;
  KernelAccum accum_;
  std::vector<KernelAccum> worker_accums_;  // reused across launches
  std::vector<ThreadCtx> worker_ctxs_;      // reused across launches
  LaunchGraph graph_;
  LaunchGraph::Stats graph_pushed_;  // already published to the registry
  u64 graph_salt_ = 0;
  GraphMode graph_mode_ = GraphMode::kOn;
  std::map<std::string, KernelReport> report_;
  std::vector<PhaseAnnotation> phases_;
  BufferPool::Stats pool_at_capture_;
  StreamId next_stream_ = 1;
  u64 max_traced_warps_ = 4096;
  bool parallel_ = true;
  std::size_t min_parallel_threads_ = 1024;
  ThreadPool* pool_ = nullptr;   // set_pool override (not owned)
  bool own_pool_only_ = false;   // true once set_pool was called
};

}  // namespace cusfft::cusim
