#include "cusim/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "cusim/profiler.hpp"

namespace cusfft::cusim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One waterfill pass over the transfers named by `idx` (positions into
// `spans`, FIFO per destination port in `idx` order). Concurrently active
// transfers split the fabric bandwidth equally; each transfer pays its
// per-message latency serially at its head, at wall rate. Fills
// start/finish/solo on the spans and accumulates the per-node stall
// (contention dilation vs. solo) and queue (ready time parked behind the
// port) splits.
void run_nic(std::vector<NicSpan>& spans, const std::vector<std::size_t>& idx,
             const NicModel& nic, std::vector<double>& stall_s,
             std::vector<double>& queue_s) {
  if (idx.empty()) return;
  const double bw = nic.bandwidth_Bps > 0 ? nic.bandwidth_Bps : 1.0;
  const std::size_t nodes = stall_s.size();

  std::vector<std::vector<std::size_t>> port(nodes);
  for (std::size_t p = 0; p < idx.size(); ++p)
    port[spans[idx[p]].node].push_back(p);
  std::vector<std::size_t> pos(nodes, 0);

  std::vector<double> lat(idx.size()), rem(idx.size());
  std::vector<char> started(idx.size(), 0);
  for (std::size_t p = 0; p < idx.size(); ++p) {
    NicSpan& s = spans[idx[p]];
    lat[p] = nic.latency_s;
    rem[p] = s.bytes;
    s.solo_s = nic.latency_s + s.bytes / bw;
  }

  double t = 0;
  std::size_t remaining = idx.size();
  while (remaining > 0) {
    // Admit ready heads; drain zero-cost ones without advancing time.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t m = 0; m < nodes; ++m) {
        if (pos[m] >= port[m].size()) continue;
        const std::size_t p = port[m][pos[m]];
        NicSpan& s = spans[idx[p]];
        if (!started[p] && s.ready_s <= t) {
          started[p] = 1;
          s.start_s = t;
          queue_s[m] += t - s.ready_s;
          progressed = true;
        }
        if (started[p] && lat[p] <= 0 && rem[p] <= 0) {
          s.finish_s = t;
          stall_s[m] += std::max(0.0, (t - s.start_s) - s.solo_s);
          ++pos[m];
          --remaining;
          progressed = true;
        }
      }
    }
    if (remaining == 0) break;

    std::vector<std::size_t> active;
    double next_ready = kInf;
    for (std::size_t m = 0; m < nodes; ++m) {
      if (pos[m] >= port[m].size()) continue;
      const std::size_t p = port[m][pos[m]];
      if (started[p])
        active.push_back(p);
      else
        next_ready = std::min(next_ready, spans[idx[p]].ready_s);
    }
    if (active.empty()) {
      if (!std::isfinite(next_ready))
        throw std::runtime_error("cusim: NIC schedule deadlocked");
      t = std::max(t, next_ready);
      continue;
    }

    const double share = bw / static_cast<double>(active.size());
    double dt = kInf;
    for (std::size_t p : active)
      dt = std::min(dt, lat[p] > 0 ? lat[p] : rem[p] / share);
    if (next_ready > t) dt = std::min(dt, next_ready - t);
    for (std::size_t p : active) {
      double left = dt;
      if (lat[p] > 0) {
        const double c = std::min(left, lat[p]);
        lat[p] = (c < lat[p]) ? lat[p] - c : 0.0;
        left -= c;
      }
      if (left > 0) rem[p] = std::max(0.0, rem[p] - left * share);
    }
    t += dt;
    for (std::size_t p : active) {
      if (lat[p] <= 0 && rem[p] <= 1e-9) {
        lat[p] = 0;
        rem[p] = 0;
        NicSpan& s = spans[idx[p]];
        s.finish_s = t;
        stall_s[s.node] += std::max(0.0, (t - s.start_s) - s.solo_s);
        ++pos[s.node];
        --remaining;
      }
    }
  }
}

}  // namespace

Cluster::Cluster(std::size_t nodes, std::size_t devices_per_node,
                 perfmodel::GpuSpec spec) {
  if (nodes == 0) nodes = 1;
  if (devices_per_node == 0) devices_per_node = 1;
  groups_.reserve(nodes);
  for (std::size_t m = 0; m < nodes; ++m)
    groups_.push_back(std::make_unique<DeviceGroup>(devices_per_node, spec));
}

Cluster::Cluster(std::vector<std::vector<perfmodel::GpuSpec>> specs) {
  if (specs.empty())
    throw std::invalid_argument("cusim: Cluster needs at least one node");
  groups_.reserve(specs.size());
  for (auto& node_specs : specs) {
    if (node_specs.empty())
      throw std::invalid_argument("cusim: Cluster node needs >= 1 device");
    groups_.push_back(std::make_unique<DeviceGroup>(std::move(node_specs)));
  }
}

std::size_t Cluster::devices() const {
  std::size_t n = 0;
  for (const auto& g : groups_) n += g->size();
  return n;
}

void Cluster::set_staging(PcieStaging s) {
  for (auto& g : groups_) g->set_staging(s);
}

void Cluster::begin_capture() {
  for (auto& g : groups_) g->begin_capture();
  transfers_.clear();
  barriers_.clear();
}

void Cluster::add_ingress(unsigned node, std::string name, double bytes) {
  if (node >= nodes())
    throw std::out_of_range("cusim: ingress to node beyond cluster size");
  transfers_.push_back(Transfer{std::move(name), node, -1, bytes});
}

void Cluster::add_exchange(unsigned src_node, unsigned dst_node,
                           std::string name, double bytes) {
  if (src_node >= nodes() || dst_node >= nodes())
    throw std::out_of_range("cusim: exchange endpoint beyond cluster size");
  transfers_.push_back(
      Transfer{std::move(name), dst_node, static_cast<int>(src_node), bytes});
}

void Cluster::mark_exchange_barrier(unsigned node) {
  if (node >= nodes())
    throw std::out_of_range("cusim: barrier on node beyond cluster size");
  Barrier b;
  b.node = node;
  DeviceGroup& g = *groups_[node];
  b.item_count.reserve(g.size());
  for (std::size_t d = 0; d < g.size(); ++d)
    b.item_count.push_back(g.device(d).timeline().items().size());
  barriers_.push_back(std::move(b));
}

ClusterSchedule Cluster::simulate() {
  ClusterSchedule cs;
  const std::size_t M = nodes();
  cs.node_fleet.reserve(M);
  for (auto& g : groups_) cs.node_fleet.push_back(g->simulate());
  cs.node_offset_s.assign(M, 0.0);
  cs.node_finish_s.assign(M, 0.0);
  cs.nic_stall_s.assign(M, 0.0);
  cs.nic_queue_s.assign(M, 0.0);

  cs.nic.reserve(transfers_.size());
  for (const Transfer& tr : transfers_) {
    NicSpan s;
    s.name = tr.name;
    s.node = tr.dst;
    s.src_node = tr.src;
    s.bytes = tr.bytes;
    cs.nic.push_back(std::move(s));
    cs.nic_bytes += tr.bytes;
  }
  std::vector<std::size_t> ingress, exchange;
  for (std::size_t i = 0; i < cs.nic.size(); ++i)
    (cs.nic[i].src_node < 0 ? ingress : exchange).push_back(i);

  // Phase A — host ingress, all ready at t = 0. A node's compute offset is
  // the arrival of its *first* ingress transfer; later ingress overlaps
  // its compute (the staging pipeline is assumed deep enough to keep the
  // shards fed once the first payload lands).
  run_nic(cs.nic, ingress, nic_, cs.nic_stall_s, cs.nic_queue_s);
  {
    std::vector<char> seen(M, 0);
    for (std::size_t i : ingress) {
      const NicSpan& s = cs.nic[i];
      if (!seen[s.node]) {
        seen[s.node] = 1;
        cs.node_offset_s[s.node] = s.finish_s;
      }
    }
  }

  // Shift each node's merged schedule onto the cluster clock.
  for (std::size_t m = 0; m < M; ++m) {
    const double off = cs.node_offset_s[m];
    if (off <= 0) continue;
    FleetSchedule& f = cs.node_fleet[m];
    for (auto& dev_items : f.items)
      for (auto& it : dev_items) {
        it.start_s += off;
        it.finish_s += off;
      }
    for (auto& v : f.finish_s)
      if (v > 0) v += off;
    f.makespan_s += off;
  }

  // Phase B — node-to-node exchanges, each ready when its source node's
  // compute finishes. Exchanges contend on the fabric among themselves
  // (ingress has long drained by the time a gather starts).
  for (std::size_t i : exchange) {
    NicSpan& s = cs.nic[i];
    s.ready_s = s.src_node >= 0 ? cs.node_fleet[s.src_node].makespan_s : 0.0;
  }
  run_nic(cs.nic, exchange, nic_, cs.nic_stall_s, cs.nic_queue_s);

  // Exchange barriers: device items marked after the barrier may not start
  // before the last exchange destined to that node has landed. Post-barrier
  // items sit behind a device sync_point, so a uniform tail shift keeps the
  // schedule consistent (and leaves the busy-interval union length alone).
  for (const Barrier& b : barriers_) {
    double arrive = 0;
    for (std::size_t i : exchange)
      if (cs.nic[i].node == b.node)
        arrive = std::max(arrive, cs.nic[i].finish_s);
    if (arrive <= 0) continue;
    FleetSchedule& f = cs.node_fleet[b.node];
    for (std::size_t d = 0; d < f.items.size() && d < b.item_count.size();
         ++d) {
      auto& dev_items = f.items[d];
      const std::size_t first = b.item_count[d];
      if (first >= dev_items.size()) continue;
      double t_first = kInf;
      for (std::size_t j = first; j < dev_items.size(); ++j)
        t_first = std::min(t_first, dev_items[j].start_s);
      const double gap = arrive - t_first;
      if (!(gap > 0)) continue;
      for (std::size_t j = first; j < dev_items.size(); ++j) {
        dev_items[j].start_s += gap;
        dev_items[j].finish_s += gap;
      }
      double fin = 0;
      for (const auto& it : dev_items) fin = std::max(fin, it.finish_s);
      f.finish_s[d] = fin;
      f.makespan_s = std::max(f.makespan_s, fin);
    }
  }

  double mk = 0;
  for (std::size_t m = 0; m < M; ++m) {
    cs.node_finish_s[m] =
        std::max(cs.node_fleet[m].makespan_s, cs.node_offset_s[m]);
    mk = std::max(mk, cs.node_finish_s[m]);
  }
  for (const NicSpan& s : cs.nic) mk = std::max(mk, s.finish_s);
  cs.makespan_s = mk;
  return cs;
}

CaptureProfile Cluster::end_capture() { return collect_profile(*this); }

}  // namespace cusfft::cusim
