// Device global-memory buffer: host-backed storage (the simulator executes
// kernels functionally on real data) plus a distinct device address range so
// the warp tracer can run the 128-byte coalescing analysis.
#pragma once

#include <atomic>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/types.hpp"
#include "cusim/thread_ctx.hpp"

namespace cusfft::cusim {

namespace detail {
/// Process-wide device address space; allocations are 256-byte aligned like
/// cudaMalloc's guarantees.
inline u64 allocate_device_range(u64 bytes) {
  static std::atomic<u64> next{1u << 20};
  const u64 aligned = (bytes + 255) & ~u64{255};
  return next.fetch_add(aligned + 256);
}
}  // namespace detail

template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t count)
      : data_(count),
        base_(detail::allocate_device_range(count * sizeof(T))) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  u64 device_addr(std::size_t i = 0) const { return base_ + i * sizeof(T); }

  // ---- device-side (traced) accessors; use inside kernels ----
  const T& load(ThreadCtx& t, std::size_t i) const {
    check(i);
    t.record_global(device_addr(i), sizeof(T));
    return data_[i];
  }
  void store(ThreadCtx& t, std::size_t i, const T& v) {
    check(i);
    t.record_global(device_addr(i), sizeof(T));
    data_[i] = v;
  }
  /// Read-modify-write with conflict accounting (atomicAdd and friends).
  template <typename U>
  T atomic_add(ThreadCtx& t, std::size_t i, const U& delta) {
    check(i);
    t.record_atomic(device_addr(i), sizeof(T));
    const T old = data_[i];
    data_[i] = static_cast<T>(old + delta);
    return old;
  }
  /// Compare-free atomic max for unsigned counters.
  T atomic_max(ThreadCtx& t, std::size_t i, const T& v) {
    check(i);
    t.record_atomic(device_addr(i), sizeof(T));
    const T old = data_[i];
    if (v > old) data_[i] = v;
    return old;
  }

  /// Store whose *data movement* was staged through shared memory (the
  /// classic coalescing fix for scattered writes): the value lands at `i`,
  /// but the global-memory traffic recorded is the dense burst at
  /// `linear_slot` the staged warp would emit. Callers must ensure every
  /// lane passes a distinct linear_slot < size().
  void store_staged(ThreadCtx& t, std::size_t i, std::size_t linear_slot,
                    const T& v) {
    check(i);
    check(linear_slot);
    t.record_shared(2);  // one shared write + one shared read
    t.record_global(device_addr(linear_slot), sizeof(T));
    data_[i] = v;
  }

  // ---- host-side (untraced) access; use via Device::upload/download or in
  // test assertions ----
  std::span<T> host() { return data_; }
  std::span<const T> host() const { return data_; }

 private:
  void check(std::size_t i) const {
    if (i >= data_.size())
      throw std::out_of_range("DeviceBuffer: index out of range");
  }
  std::vector<T> data_;
  u64 base_ = 0;
};

}  // namespace cusfft::cusim
