// Device global-memory buffer: host-backed storage (the simulator executes
// kernels functionally on real data) plus a distinct device address range so
// the warp tracer can run the 128-byte coalescing analysis. Storage comes
// from the process-wide BufferPool, so destroying a buffer parks its
// allocation for the next plan or execute() instead of freeing it.
#pragma once

#include <array>
#include <atomic>
#include <span>
#include <stdexcept>
#include <type_traits>

#include "core/types.hpp"
#include "cusim/pool.hpp"
#include "cusim/thread_ctx.hpp"

namespace cusfft::cusim {

namespace detail {
/// Address-striped spin locks making the functional side of device atomics
/// genuinely atomic under the block-parallel launch path. Same address ->
/// same lock, so read-modify-writes on one cell serialize; different cells
/// at worst share a stripe (harmless contention). Uncontended cost is one
/// cache-hot test_and_set, so the sequential path is unaffected.
inline std::atomic_flag& atomic_lock_for(u64 addr) {
  static std::array<std::atomic_flag, 256> locks;
  return locks[(addr >> 3) & 255];
}

class AtomicGuard {
 public:
  explicit AtomicGuard(u64 addr) : lock_(atomic_lock_for(addr)) {
    while (lock_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~AtomicGuard() { lock_.clear(std::memory_order_release); }
  AtomicGuard(const AtomicGuard&) = delete;
  AtomicGuard& operator=(const AtomicGuard&) = delete;

 private:
  std::atomic_flag& lock_;
};
}  // namespace detail

template <typename T>
class DeviceBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "DeviceBuffer elements must be trivially copyable (the pool "
                "recycles raw storage)");

 public:
  DeviceBuffer() = default;
  explicit DeviceBuffer(std::size_t count)
      : block_(BufferPool::global().acquire(count * sizeof(T))),
        count_(count) {}
  ~DeviceBuffer() { BufferPool::global().release(std::move(block_)); }

  DeviceBuffer(DeviceBuffer&& o) noexcept
      : block_(std::move(o.block_)), count_(o.count_) {
    o.block_ = BufferPool::Block{};
    o.count_ = 0;
  }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      BufferPool::global().release(std::move(block_));
      block_ = std::move(o.block_);
      count_ = o.count_;
      o.block_ = BufferPool::Block{};
      o.count_ = 0;
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  u64 device_addr(std::size_t i = 0) const {
    return block_.base + i * sizeof(T);
  }

  // ---- device-side (traced) accessors; use inside kernels ----
  const T& load(ThreadCtx& t, std::size_t i) const {
    check(i);
    t.record_global(device_addr(i), sizeof(T));
    return data()[i];
  }
  void store(ThreadCtx& t, std::size_t i, const T& v) {
    check(i);
    t.record_global(device_addr(i), sizeof(T));
    data()[i] = v;
  }
  /// Read-modify-write with conflict accounting (atomicAdd and friends).
  /// Atomic for real: concurrent blocks may hit the same cell.
  template <typename U>
  T atomic_add(ThreadCtx& t, std::size_t i, const U& delta) {
    check(i);
    t.record_atomic(device_addr(i), sizeof(T));
    detail::AtomicGuard g(device_addr(i));
    const T old = data()[i];
    data()[i] = static_cast<T>(old + delta);
    return old;
  }
  /// Compare-free atomic max for unsigned counters.
  T atomic_max(ThreadCtx& t, std::size_t i, const T& v) {
    check(i);
    t.record_atomic(device_addr(i), sizeof(T));
    detail::AtomicGuard g(device_addr(i));
    const T old = data()[i];
    if (v > old) data()[i] = v;
    return old;
  }

  /// Store whose *data movement* was staged through shared memory (the
  /// classic coalescing fix for scattered writes): the value lands at `i`,
  /// but the global-memory traffic recorded is the dense burst at
  /// `linear_slot` the staged warp would emit. Callers must ensure every
  /// lane passes a distinct linear_slot < size().
  void store_staged(ThreadCtx& t, std::size_t i, std::size_t linear_slot,
                    const T& v) {
    check(i);
    check(linear_slot);
    t.record_shared(2);  // one shared write + one shared read
    t.record_global(device_addr(linear_slot), sizeof(T));
    data()[i] = v;
  }

  // ---- host-side (untraced) access; use via Device::upload/download or in
  // test assertions ----
  std::span<T> host() { return {data(), count_}; }
  std::span<const T> host() const { return {data(), count_}; }

 private:
  T* data() { return reinterpret_cast<T*>(block_.bytes.data()); }
  const T* data() const {
    return reinterpret_cast<const T*>(block_.bytes.data());
  }
  void check(std::size_t i) const {
    if (i >= count_)
      throw std::out_of_range("DeviceBuffer: index out of range");
  }
  BufferPool::Block block_;
  std::size_t count_ = 0;
};

}  // namespace cusfft::cusim
