#include "cusim/timeline.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cusfft::cusim {

void Timeline::clear() {
  items_.clear();
  schedule_.clear();
  events_.clear();
  last_on_stream_.clear();
  pending_deps_.clear();
  pending_after_.clear();
  dep_arena_.reset();
  barrier_ = 0;
  dirty_ = true;
}

void Timeline::clear_events() {
  events_.clear();
  // The cached makespan/schedule was computed for the pre-clear event set;
  // force the next simulate() to recompute rather than reuse it.
  dirty_ = true;
}

std::size_t Timeline::record_event(StreamId s) {
  EventMark m;
  m.scoped = true;
  if (const auto it = last_on_stream_.find(s); it != last_on_stream_.end())
    m.item = static_cast<std::ptrdiff_t>(it->second);
  events_.push_back(m);
  return events_.size() - 1;
}

void Timeline::wait_event(StreamId s, std::size_t event_id) {
  if (event_id >= events_.size())
    throw std::out_of_range("Timeline::wait_event: unknown event");
  const EventMark& e = events_[event_id];
  if (e.scoped) {
    if (e.item >= 0)
      pending_deps_[s].push_back(static_cast<std::size_t>(e.item));
  } else {
    std::size_t& upto = pending_after_[s];
    upto = std::max(upto, e.upto);
  }
}

double Timeline::event_time_s(std::size_t event_id) const {
  return event_time_s(event_id, schedule_);
}

double Timeline::event_time_s(std::size_t event_id,
                              const std::vector<ItemSchedule>& sched) const {
  if (event_id >= events_.size())
    throw std::out_of_range("Timeline::event_time_s: unknown event");
  const EventMark& e = events_[event_id];
  if (e.scoped) {
    if (e.item < 0 || static_cast<std::size_t>(e.item) >= sched.size())
      return 0.0;
    return sched[static_cast<std::size_t>(e.item)].finish_s;
  }
  double t = 0.0;
  for (std::size_t i = 0; i < e.upto && i < sched.size(); ++i)
    t = std::max(t, sched[i].finish_s);
  return t;
}

std::size_t Timeline::submit(TimelineItem item) {
  return submit(std::move(item), {});
}

std::size_t Timeline::submit(TimelineItem item,
                             std::span<const std::size_t> deps) {
  item.after = barrier_;
  if (const auto it = pending_after_.find(item.stream);
      it != pending_after_.end()) {
    item.after = std::max(item.after, it->second);
    pending_after_.erase(it);
  }
  // Merge caller-set deps, the explicit list, and the stream's pending
  // wait_event() deps into one arena-backed span: the caller's storage may
  // not outlive this call, the arena does (until clear()).
  const auto pend = pending_deps_.find(item.stream);
  const std::size_t pend_n =
      pend != pending_deps_.end() ? pend->second.size() : 0;
  const std::size_t total = item.deps.size() + deps.size() + pend_n;
  if (total != 0) {
    std::size_t* dst = dep_arena_.alloc_array<std::size_t>(total);
    std::size_t k = 0;
    for (const std::size_t d : item.deps) dst[k++] = d;
    for (const std::size_t d : deps) dst[k++] = d;
    if (pend_n != 0)
      for (const std::size_t d : pend->second) dst[k++] = d;
    item.deps = {dst, total};
  }
  if (pend != pending_deps_.end()) pending_deps_.erase(pend);
  items_.push_back(std::move(item));
  last_on_stream_[items_.back().stream] = items_.size() - 1;
  dirty_ = true;
  return items_.size() - 1;
}

double Timeline::simulate() {
  if (!dirty_) return makespan_s_;
  const std::size_t n = items_.size();
  schedule_.assign(n, ItemSchedule{});
  if (n == 0) {
    dirty_ = false;
    makespan_s_ = 0.0;
    return 0.0;
  }

  constexpr double kEps = 1e-15;
  struct State {
    double mem_left = 0;
    double comp_left = 0;
    bool running = false;
    bool done = false;
  };
  std::vector<State> st(n);
  // Per-stream FIFO: index of the previous item on the same stream.
  std::vector<std::ptrdiff_t> prev(n, -1);
  {
    std::vector<std::pair<StreamId, std::size_t>> last;
    for (std::size_t i = 0; i < n; ++i) {
      st[i].mem_left = items_[i].mem_s;
      st[i].comp_left = items_[i].compute_s;
      for (auto& [sid, idx] : last)
        if (sid == items_[i].stream) {
          prev[i] = static_cast<std::ptrdiff_t>(idx);
          idx = i;
          goto linked;
        }
      last.emplace_back(items_[i].stream, i);
    linked:;
    }
  }

  double t = 0.0;
  std::size_t done_count = 0;
  // The event loop only ever touches items that are not yet done: `alive`
  // holds them in ascending index order (compacted after each retire), and
  // `done_prefix` is the first not-done index — "all of [0, after) done"
  // becomes one comparison. Scheduling decisions are evaluated in the same
  // ascending-index order as the full scan this replaced, so the schedule
  // is bit-identical; only the per-step cost drops from O(n) to O(alive).
  std::vector<std::size_t> alive(n);
  for (std::size_t i = 0; i < n; ++i) alive[i] = i;
  std::size_t done_prefix = 0;
  unsigned dev_running = 0, pcie_running = 0;
  while (done_count < n) {
    // Start every eligible item (stream predecessor finished), respecting
    // the concurrent-kernel cap for device work.
    for (const std::size_t i : alive) {
      if (st[i].running) continue;
      if (prev[i] >= 0 && !st[static_cast<std::size_t>(prev[i])].done)
        continue;
      if (items_[i].after > done_prefix) continue;  // barrier window open
      bool deps_clear = true;
      for (const std::size_t d : items_[i].deps)
        if (d < n && !st[d].done) {
          deps_clear = false;
          break;
        }
      if (!deps_clear) continue;
      if (items_[i].resource == Resource::kDeviceMemory) {
        if (dev_running >= max_kernels_) continue;
        ++dev_running;
      } else {
        ++pcie_running;
      }
      st[i].running = true;
      schedule_[i].start_s = t;
    }

    // Bandwidth is shared only among items that still demand memory.
    unsigned dev_mem = 0, pcie_mem = 0;
    for (const std::size_t i : alive)
      if (st[i].running && st[i].mem_left > kEps)
        (items_[i].resource == Resource::kDeviceMemory ? dev_mem
                                                       : pcie_mem)++;

    // Next completion under the current bandwidth shares.
    double dt = std::numeric_limits<double>::infinity();
    for (const std::size_t i : alive) {
      if (!st[i].running) continue;
      const double share =
          items_[i].resource == Resource::kDeviceMemory
              ? static_cast<double>(std::max(1u, dev_mem))
              : static_cast<double>(std::max(1u, pcie_mem));
      const double fin = std::max(st[i].comp_left, st[i].mem_left * share);
      dt = std::min(dt, fin);
      // Shares change when an item's memory demand drains, even if its
      // compute phase keeps running — that is also an event.
      if (st[i].mem_left > kEps) dt = std::min(dt, st[i].mem_left * share);
    }
    if (!std::isfinite(dt)) break;  // nothing runnable: defensive stop
    dt = std::max(dt, 0.0);

    // Advance everything by dt and retire finished items.
    bool retired = false;
    for (const std::size_t i : alive) {
      if (!st[i].running) continue;
      const double share =
          items_[i].resource == Resource::kDeviceMemory
              ? static_cast<double>(std::max(1u, dev_mem))
              : static_cast<double>(std::max(1u, pcie_mem));
      st[i].comp_left -= dt;
      st[i].mem_left -= dt / share;
      if (st[i].comp_left <= kEps && st[i].mem_left <= kEps) {
        st[i].running = false;
        st[i].done = true;
        schedule_[i].finish_s = t + dt;
        ++done_count;
        retired = true;
        (items_[i].resource == Resource::kDeviceMemory ? dev_running
                                                       : pcie_running)--;
      }
    }
    t += dt;
    if (retired) {
      alive.erase(std::remove_if(alive.begin(), alive.end(),
                                 [&](std::size_t i) { return st[i].done; }),
                  alive.end());
      while (done_prefix < n && st[done_prefix].done) ++done_prefix;
    }
  }
  dirty_ = false;
  makespan_s_ = t;
  return t;
}

}  // namespace cusfft::cusim
