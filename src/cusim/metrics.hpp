// Always-on fleet telemetry: a process-wide registry of named counters,
// gauges, and log-bucketed latency histograms. Where CaptureProfile
// (profiler.hpp) answers "what happened inside this one capture", the
// registry answers "what has this process been doing across thousands of
// executes" — cheap enough to stay enabled under sustained fleet traffic.
//
// Hot-path contract: an increment is one relaxed atomic add on a
// per-thread shard cell (cache-line padded, so concurrent writers never
// bounce a line); registration / lookup by name takes a mutex and is meant
// to happen once, with the returned handle cached by the caller.
// Aggregation across shards happens only at snapshot() time.
//
// Two exposition formats, both deterministic (identical state produces
// byte-identical output): Prometheus text format (expose_text) and a JSON
// document (expose_json) that tools/metrics_check validates with the
// in-repo core/json_lite reader. Metric naming scheme, label convention,
// and the capture-vs-continuous split are documented in docs/PROFILING.md.
//
// Family prefixes currently registered here: cusfft_executes_total /
// cusfft_signal_latency_ms / cusfft_phase_ms (per-plan execution),
// cusfft_fleet_* / cusfft_device_* (MultiGpuPlan sharding), cusfft_pool_*
// / cusfft_arena_* / cusfft_graph_* (allocator and replay substrate), and
// cusfft_serve_* (the multi-tenant serving tier — requests/completed/
// shed/rejected/batches counters with a {class="latency"|"throughput"}
// split on requests and latency histograms; see cusfft/server.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"

namespace cusfft::cusim {

namespace metrics_detail {

/// Shard count for all sharded instruments (power of two). Eight cells is
/// enough to keep the fleet's shard threads (one per device) plus the
/// block-parallel pool workers off each other's cache lines.
inline constexpr std::size_t kShards = 8;

/// This thread's shard slot: threads are assigned round-robin on first
/// use, so up to kShards concurrent writers touch distinct cells.
std::size_t shard_index();

/// Relaxed compare-exchange add for doubles (fetch_add on atomic<double>
/// is C++20-library-dependent; the CAS loop is portable and, on a
/// per-thread shard, almost always succeeds on the first try).
inline void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace metrics_detail

/// Monotonic counter. add() is the hot path: one relaxed fetch_add on the
/// calling thread's shard cell.
class Counter {
 public:
  void add(u64 n = 1) {
    cells_[metrics_detail::shard_index()].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  /// Sum over shards. Concurrent adds may or may not be included (each
  /// cell is read once); the value never goes backwards between calls
  /// that happen-after the adds they observe.
  u64 value() const {
    u64 s = 0;
    for (const Cell& c : cells_) s += c.v.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend class MetricsRegistry;
  void zero() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }
  struct alignas(64) Cell {
    std::atomic<u64> v{0};
  };
  std::array<Cell, metrics_detail::kShards> cells_;
};

/// Last-write-wins instantaneous value (utilization, bytes parked, ...).
/// set_max keeps a high-water mark instead.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double v) { metrics_detail::atomic_add(v_, v); }
  void set_max(double v) { metrics_detail::atomic_max(v_, v); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  void zero() { v_.store(0, std::memory_order_relaxed); }
  std::atomic<double> v_{0};
};

/// Aggregated view of one histogram: exact count/sum/min/max plus the
/// non-empty buckets (upper bound, count), ascending.
struct HistogramSnapshot {
  u64 count = 0;
  double sum = 0;
  double min = 0;  // exact (not bucketed); 0 when count == 0
  double max = 0;
  std::vector<std::pair<double, u64>> buckets;

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the rank-ceil(q*count) observation, clamped to the exact max — so
  /// percentile(1) == max exactly, and any percentile is within one
  /// bucket's width (<= 1/kSubBuckets relative) above the true order
  /// statistic. 0 when the histogram is empty.
  double percentile(double q) const;
};

/// Log-bucketed latency histogram: power-of-two octaves, kSubBuckets
/// linear sub-buckets per octave (HdrHistogram-style), so the relative
/// bucket width — and thereby the percentile error — is bounded by
/// 1/kSubBuckets. observe() is two relaxed adds plus min/max CAS on the
/// calling thread's shard.
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;  // 12.5% relative resolution
  static constexpr int kMinExp = -20;    // first octave: [2^-20, 2^-19) ms
  static constexpr int kMaxExp = 30;     // values >= 2^30 ms overflow
  /// Underflow bucket (v < 2^kMinExp, including 0) + the octave grid +
  /// overflow bucket.
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets + 2;

  Histogram();

  void observe(double v);

  /// Bucket index for a value (total order: underflow, grid, overflow).
  static std::size_t bucket_index(double v);
  /// Inclusive upper bound of a grid/underflow bucket; +infinity for the
  /// overflow bucket.
  static double bucket_upper(std::size_t index);

  HistogramSnapshot snapshot() const;

 private:
  friend class MetricsRegistry;
  void zero();
  struct alignas(64) Shard {
    std::atomic<u64> count{0};
    std::atomic<double> sum{0};
    std::atomic<double> min{0};  // valid only when count > 0
    std::atomic<double> max{0};
    std::array<std::atomic<u64>, kBuckets> buckets{};
  };
  std::array<Shard, metrics_detail::kShards> shards_;
};

class MetricsRegistry {
 public:
  /// Instrument lookup-or-create by name. Names follow Prometheus rules
  /// ([a-zA-Z_:][a-zA-Z0-9_:]*), optionally carrying a label set appended
  /// with label() — e.g. `cusfft_signal_latency_ms{device="0"}`. Returned
  /// references are stable for the registry's lifetime; hot paths should
  /// cache them. Looking a name up as two different instrument kinds
  /// throws std::logic_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// `name{key="value"}`, merging into an existing label set — the
  /// convention every labeled metric in the repo uses.
  static std::string label(const std::string& name, const std::string& key,
                           const std::string& value);

  /// Point-in-time aggregation of every instrument plus the pull
  /// collectors' samples. Deterministic ordering (by name).
  struct Snapshot {
    std::map<std::string, u64> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /// JSON document (`{"schema": "cusfft-metrics-v1", ...}`); schema in
    /// docs/PROFILING.md, validated by tools/metrics_check.
    std::string to_json() const;
    /// Prometheus text exposition format (counter/gauge/histogram
    /// families; histogram buckets are cumulative with a +Inf bound).
    std::string to_prometheus() const;
  };

  /// Pull-style collector, run at every snapshot(): writes samples for
  /// state that already maintains its own atomics (BufferPool) instead of
  /// double-accounting on the hot path. Counter samples written by
  /// collectors are reported relative to the last reset().
  using Collector = std::function<void(Snapshot&)>;
  void add_collector(Collector c);

  Snapshot snapshot() const;
  std::string expose_json() const { return snapshot().to_json(); }
  std::string expose_text() const { return snapshot().to_prometheus(); }

  /// Zeroes every instrument in place (registered handles stay valid) and
  /// re-baselines collector-sourced counters so they restart from zero.
  void reset();

  /// The process-wide registry every always-on instrument lives in. The
  /// first use registers the default collectors (BufferPool).
  static MetricsRegistry& global();

 private:
  void run_collectors(Snapshot& s) const;

  mutable std::mutex mu_;
  // std::map: pointer-stable nodes + deterministic iteration by name.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<Collector> collectors_;
  std::map<std::string, u64> collector_base_;  // reset() baseline
};

}  // namespace cusfft::cusim
