// Renders a capture region's per-kernel statistics as a ResultTable —
// the simulator's equivalent of an nvprof summary.
#pragma once

#include "core/table.hpp"
#include "cusim/device.hpp"

namespace cusfft::cusim {

/// One row per kernel name: launches, transactions (coalesced/random),
/// useful bytes, flops, atomics, worst conflict chain, summed solo time.
ResultTable report_table(const Device& dev);

}  // namespace cusfft::cusim
