// Renders a capture region's per-kernel statistics as a ResultTable —
// the simulator's equivalent of an nvprof summary.
//
// Output contract (stable golden-file diffs rely on it):
//   * one row per kernel name, in lexicographic name order;
//   * then four `[pool ...]` rows reporting the BufferPool::global() delta
//     since the device's begin_capture() — allocations, reuses, fresh MB,
//     currently pooled MB — with the value in the `launches` column and
//     "-" elsewhere, so "no allocations after warm-up" is assertable from
//     the report alone;
//   * floats formatted by ResultTable::num (%.4g — deterministic for a
//     given value).
#pragma once

#include "core/table.hpp"
#include "cusim/device.hpp"

namespace cusfft::cusim {

/// One row per kernel name: launches, transactions (coalesced/random),
/// useful bytes, flops, atomics, worst conflict chain, summed solo time;
/// then the `[pool ...]` allocation-telemetry rows (see header comment).
ResultTable report_table(const Device& dev);

}  // namespace cusfft::cusim
