// Launch-record arena: a chunked bump allocator for the short-lived,
// trivially-destructible records the simulator produces at high rate —
// per-warp trace accesses, per-warp totals, and TimelineItem dependency
// lists. One reset() recycles every chunk (BufferPool-style: capacity is
// retained, nothing returns to the heap), so a warm capture performs no
// allocations on the launch hot path no matter how many signals it runs.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/types.hpp"

namespace cusfft::cusim {

class LaunchArena {
 public:
  struct Stats {
    u64 chunks = 0;          // chunks currently owned (live capacity)
    u64 bytes_reserved = 0;  // summed chunk capacity
    u64 bytes_used = 0;      // bytes handed out since the last reset
    u64 resets = 0;          // recycling events (per launch / per capture)
  };

  explicit LaunchArena(std::size_t first_chunk_bytes = 16 * 1024)
      : first_chunk_bytes_(first_chunk_bytes) {}

  /// Bump-allocates `bytes` aligned to `align` (a power of two). Never
  /// returns nullptr; grows by doubling chunks when the active chunk is
  /// exhausted.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      const std::size_t at = (c.used + (align - 1)) & ~(align - 1);
      if (at + bytes <= c.cap) {
        c.used = at + bytes;
        bytes_used_ += bytes;
        return c.data.get() + at;
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Typed array allocation. T must be trivially destructible: reset()
  /// drops storage without running destructors.
  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>);
    if (count == 0) return nullptr;
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Recycles every chunk: capacity is kept, contents are abandoned. All
  /// pointers handed out before the reset become invalid.
  void reset() {
    for (std::size_t i = 0; i <= active_ && i < chunks_.size(); ++i)
      chunks_[i].used = 0;
    active_ = 0;
    bytes_used_ = 0;
    ++resets_;
  }

  Stats stats() const {
    Stats s;
    s.chunks = chunks_.size();
    for (const Chunk& c : chunks_) s.bytes_reserved += c.cap;
    s.bytes_used = bytes_used_;
    s.resets = resets_;
    return s;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // index of the chunk currently bumping
  std::size_t first_chunk_bytes_;
  u64 bytes_used_ = 0;
  u64 resets_ = 0;
};

/// Minimal growable array on a LaunchArena — the launch hot path's
/// replacement for std::vector. Grow-by-doubling copies into fresh arena
/// space and abandons the old block (reclaimed wholesale by the next
/// arena reset). Elements must be trivially copyable.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  ArenaVec() = default;
  explicit ArenaVec(LaunchArena* arena) : arena_(arena) {}

  /// Rebinds to `arena` and empties the vector (storage belongs to the
  /// previous arena generation; do not touch it).
  void reset(LaunchArena* arena) {
    arena_ = arena;
    data_ = nullptr;
    size_ = 0;
    cap_ = 0;
  }

  void push_back(const T& v) {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_++] = v;
  }

  void append(const T* src, std::size_t count) {
    if (count == 0) return;
    if (size_ + count > cap_) grow(size_ + count);
    std::memcpy(data_ + size_, src, count * sizeof(T));
    size_ += count;
  }

  void clear() { size_ = 0; }

  /// Sets the size to `count` without initializing new elements (scratch
  /// buffers that are fully overwritten before being read). Capacity is
  /// kept when shrinking, so reuse cycles stop touching the arena once the
  /// high-water mark is reached.
  void resize_uninit(std::size_t count) {
    if (count > cap_) grow(count);
    size_ = count;
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void grow(std::size_t need) {
    std::size_t cap = cap_ == 0 ? 16 : cap_ * 2;
    while (cap < need) cap *= 2;
    T* fresh = arena_->alloc_array<T>(cap);
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    cap_ = cap;
  }

  LaunchArena* arena_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace cusfft::cusim
