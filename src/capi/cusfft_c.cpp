#include "capi/cusfft.h"

#include <algorithm>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include <cstring>

#include "core/spectrum.hpp"
#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "cusfft/autopick.hpp"
#include "cusfft/cluster_plan.hpp"
#include "cusfft/multi_plan.hpp"
#include "cusfft/plan.hpp"
#include "cusim/cluster.hpp"
#include "cusfft/server.hpp"
#include "cusim/device.hpp"
#include "cusim/device_group.hpp"
#include "cusim/metrics.hpp"
#include "cusim/profiler.hpp"
#include "psfft/psfft.hpp"
#include "sfft/ffast.hpp"
#include "sfft/serial.hpp"

/// Owns whichever backend the plan was created for. The GPU backends own
/// their simulated device (or device fleet, cusfft_set_device_count);
/// PsFFT shares the process-wide thread pool.
struct cusfft_plan_t {
  cusfft::sfft::Params params;
  cusfft_backend backend = CUSFFT_BACKEND_SERIAL;
  int batch_pipeline = 1;  // cusfft_set_batch_pipeline; GPU batches only
  size_t device_count = 1;  // cusfft_set_device_count; GPU backends only
  size_t node_count = 1;    // cusfft_set_node_count; GPU backends only
  cusfft::cusim::PcieStaging staging;  // cusfft_set_pcie_staging
  cusfft::gpu::ShardPolicy shard_policy =
      cusfft::gpu::ShardPolicy::kCostLpt;  // cusfft_set_shard_policy

  std::unique_ptr<cusfft::sfft::SerialPlan> serial;
  std::unique_ptr<cusfft::sfft::FfastPlan> ffast;  // CPU backends, algo FFAST
  std::unique_ptr<cusfft::psfft::PsfftPlan> psfft;
  std::unique_ptr<cusfft::cusim::Device> device;
  std::unique_ptr<cusfft::gpu::GpuPlan> gpu;
  std::unique_ptr<cusfft::cusim::DeviceGroup> group;  // device_count > 1
  std::unique_ptr<cusfft::gpu::MultiGpuPlan> multi;   // device_count > 1
  std::unique_ptr<cusfft::cusim::Cluster> cluster;    // node_count > 1
  std::unique_ptr<cusfft::gpu::ClusterPlan> cplan;    // node_count > 1

  /// Capture profile of the most recent GPU execute/execute_many (null
  /// until then, and for CPU backends).
  std::unique_ptr<cusfft::cusim::CaptureProfile> profile;

  /// Fleet stats of the most recent GPU execute/execute_many (a single
  /// device reports devices == 1, imbalance 1.0, zero stalls).
  std::unique_ptr<cusfft::gpu::GpuFleetStats> fleet;

  /// Retains the open capture's profile after a GPU run — the merged
  /// fleet profile (one trace track group per device) under sharding.
  void collect_profile() {
    profile = std::make_unique<cusfft::cusim::CaptureProfile>(
        cplan != nullptr ? cluster->end_capture()
        : multi != nullptr ? group->end_capture()
                           : device->end_capture());
  }

  /// Degrades a single-device batch's stats to the fleet shape so
  /// cusfft_get_fleet_stats works for any device count.
  void fleet_from_single(double model_ms, size_t signals) {
    auto st = std::make_unique<cusfft::gpu::GpuFleetStats>();
    st->model_ms = model_ms;
    st->signals = signals;
    st->devices = 1;
    cusfft::gpu::GpuDeviceShardStats ds;
    ds.device = device->spec().name;
    ds.signals = signals;
    ds.model_ms = model_ms;
    ds.solo_ms = model_ms;
    ds.utilization = 1.0;
    st->per_device.push_back(std::move(ds));
    fleet = std::move(st);
  }

  cusfft_status rebuild() {
    try {
      serial.reset();
      ffast.reset();
      psfft.reset();
      gpu.reset();
      multi.reset();
      group.reset();
      cplan.reset();
      cluster.reset();
      device.reset();
      profile.reset();
      fleet.reset();
      switch (backend) {
        case CUSFFT_BACKEND_SERIAL:
        case CUSFFT_BACKEND_PSFFT: {
          // CPU backends honor the CUSFFT_ALGO override too (re-read on
          // every rebuild, never latched). kAuto has no device spec to
          // price against and falls back to the default bucket hashing;
          // FFAST runs the reference CPU implementation either way.
          auto algo = params.algo;
          if (const auto ov = cusfft::gpu::algo_override_from_env())
            algo = *ov;
          if (algo == cusfft::sfft::Algorithm::kFfast) {
            auto p = params;
            p.algo = cusfft::sfft::Algorithm::kFfast;
            ffast = std::make_unique<cusfft::sfft::FfastPlan>(p);
          } else if (backend == CUSFFT_BACKEND_SERIAL) {
            serial = std::make_unique<cusfft::sfft::SerialPlan>(params);
          } else {
            psfft = std::make_unique<cusfft::psfft::PsfftPlan>(
                params, cusfft::ThreadPool::global());
          }
          break;
        }
        case CUSFFT_BACKEND_GPU_BASELINE:
        case CUSFFT_BACKEND_GPU_OPTIMIZED: {
          const auto opts = backend == CUSFFT_BACKEND_GPU_OPTIMIZED
                                ? cusfft::gpu::Options::optimized()
                                : cusfft::gpu::Options::baseline();
          if (node_count > 1) {
            cluster = std::make_unique<cusfft::cusim::Cluster>(node_count,
                                                               device_count);
            cluster->set_staging(staging);
            cplan = std::make_unique<cusfft::gpu::ClusterPlan>(
                *cluster, params, opts);
            cplan->set_shard_policy(shard_policy);
          } else if (device_count > 1) {
            group =
                std::make_unique<cusfft::cusim::DeviceGroup>(device_count);
            group->set_staging(staging);
            multi = std::make_unique<cusfft::gpu::MultiGpuPlan>(
                *group, params, opts);
            multi->set_shard_policy(shard_policy);
          } else {
            device = std::make_unique<cusfft::cusim::Device>();
            // resolve_algorithm applies the CUSFFT_ALGO override and
            // sends kAuto through the picker (GpuPlan itself refuses
            // unresolved kAuto); malformed env values throw
            // invalid_argument -> CUSFFT_INVALID_ARGUMENT below. The
            // multi/cluster paths instead resolve per signal inside
            // execute_mixed.
            auto resolved = params;
            resolved.algo = cusfft::gpu::resolve_algorithm(
                params, device->spec(), opts);
            gpu = std::make_unique<cusfft::gpu::GpuPlan>(*device, resolved,
                                                         opts);
          }
          break;
        }
        default:
          return CUSFFT_INVALID_ARGUMENT;
      }
    } catch (const std::invalid_argument&) {
      return CUSFFT_INVALID_ARGUMENT;
    } catch (const std::bad_alloc&) {
      return CUSFFT_ALLOC_FAILED;
    } catch (const std::runtime_error&) {
      return CUSFFT_ALLOC_FAILED;  // device-memory budget exceeded
    } catch (...) {
      return CUSFFT_INTERNAL_ERROR;
    }
    return CUSFFT_SUCCESS;
  }
};

extern "C" {

cusfft_status cusfft_plan(cusfft_handle* out, size_t n, size_t k,
                          cusfft_backend backend) {
  if (out == nullptr) return CUSFFT_INVALID_ARGUMENT;
  *out = nullptr;
  auto plan = std::make_unique<cusfft_plan_t>();
  plan->params.n = n;
  plan->params.k = k;
  plan->backend = backend;
  const cusfft_status st = plan->rebuild();
  if (st != CUSFFT_SUCCESS) return st;
  *out = plan.release();
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_set_seed(cusfft_handle h, uint64_t seed) {
  if (h == nullptr) return CUSFFT_INVALID_ARGUMENT;
  h->params.seed = seed;
  return h->rebuild();
}

cusfft_status cusfft_set_algorithm(cusfft_handle h, cusfft_algorithm algo) {
  if (h == nullptr) return CUSFFT_INVALID_ARGUMENT;
  switch (algo) {
    case CUSFFT_ALGO_CUSFFT:
      h->params.algo = cusfft::sfft::Algorithm::kCusfft;
      break;
    case CUSFFT_ALGO_FFAST:
      h->params.algo = cusfft::sfft::Algorithm::kFfast;
      break;
    case CUSFFT_ALGO_AUTO:
      h->params.algo = cusfft::sfft::Algorithm::kAuto;
      break;
    default:
      return CUSFFT_INVALID_ARGUMENT;
  }
  return h->rebuild();
}

cusfft_status cusfft_set_batch_pipeline(cusfft_handle h, int enable) {
  if (h == nullptr) return CUSFFT_INVALID_ARGUMENT;
  h->batch_pipeline = enable;
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_execute(cusfft_handle h, const double* input,
                             uint64_t* locations, double* values,
                             size_t* count) {
  if (h == nullptr || input == nullptr || locations == nullptr ||
      values == nullptr || count == nullptr)
    return CUSFFT_INVALID_ARGUMENT;
  try {
    const std::span<const cusfft::cplx> x(
        reinterpret_cast<const cusfft::cplx*>(input), h->params.n);
    cusfft::SparseSpectrum s;
    switch (h->backend) {
      case CUSFFT_BACKEND_SERIAL:
        s = h->ffast != nullptr ? h->ffast->execute(x)
                                : h->serial->execute(x);
        break;
      case CUSFFT_BACKEND_PSFFT:
        s = h->ffast != nullptr ? h->ffast->execute(x)
                                : h->psfft->execute(x);
        break;
      default:
        if (h->cplan != nullptr || h->multi != nullptr) {
          // Route the single signal through the fleet/cluster (it lands
          // on the cheapest device; the others idle in the merged
          // timeline).
          const std::span<const cusfft::cplx> one[] = {x};
          h->fleet = std::make_unique<cusfft::gpu::GpuFleetStats>();
          const auto mode = h->batch_pipeline != 0
                                ? cusfft::gpu::BatchMode::kAuto
                                : cusfft::gpu::BatchMode::kSerialized;
          auto results =
              h->cplan != nullptr
                  ? h->cplan->execute_many(one, h->fleet.get(), mode)
                  : h->multi->execute_many(one, h->fleet.get(), mode);
          s = std::move(results[0]);
        } else {
          cusfft::gpu::GpuExecStats est;
          s = h->gpu->execute(x, &est);
          h->fleet_from_single(est.model_ms, 1);
        }
        h->collect_profile();
        break;
    }
    if (s.size() > *count) s = cusfft::trim_top_k(std::move(s), *count);
    for (size_t i = 0; i < s.size(); ++i) {
      locations[i] = s[i].loc;
      values[2 * i] = s[i].val.real();
      values[2 * i + 1] = s[i].val.imag();
    }
    *count = s.size();
  } catch (const std::invalid_argument&) {
    return CUSFFT_INVALID_ARGUMENT;
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_execute_many(cusfft_handle h, const double* inputs,
                                  size_t batch, size_t capacity,
                                  uint64_t* locations, double* values,
                                  size_t* counts) {
  if (h == nullptr || inputs == nullptr || locations == nullptr ||
      values == nullptr || counts == nullptr)
    return CUSFFT_INVALID_ARGUMENT;
  try {
    const size_t n = h->params.n;
    std::vector<std::span<const cusfft::cplx>> xs(batch);
    for (size_t i = 0; i < batch; ++i)
      xs[i] = std::span<const cusfft::cplx>(
          reinterpret_cast<const cusfft::cplx*>(inputs) + i * n, n);

    std::vector<cusfft::SparseSpectrum> results;
    switch (h->backend) {
      case CUSFFT_BACKEND_SERIAL:
        results.reserve(batch);
        for (const auto& x : xs)
          results.push_back(h->ffast != nullptr ? h->ffast->execute(x)
                                                : h->serial->execute(x));
        break;
      case CUSFFT_BACKEND_PSFFT:
        results.reserve(batch);
        for (const auto& x : xs)
          results.push_back(h->ffast != nullptr ? h->ffast->execute(x)
                                                : h->psfft->execute(x));
        break;
      default: {
        const auto mode = h->batch_pipeline != 0
                              ? cusfft::gpu::BatchMode::kAuto
                              : cusfft::gpu::BatchMode::kSerialized;
        if (h->cplan != nullptr) {
          h->fleet = std::make_unique<cusfft::gpu::GpuFleetStats>();
          results = h->cplan->execute_many(xs, h->fleet.get(), mode);
        } else if (h->multi != nullptr) {
          h->fleet = std::make_unique<cusfft::gpu::GpuFleetStats>();
          results = h->multi->execute_many(xs, h->fleet.get(), mode);
        } else {
          cusfft::gpu::GpuBatchStats bst;
          results = h->gpu->execute_many(xs, &bst, mode);
          h->fleet_from_single(bst.model_ms, batch);
        }
        h->collect_profile();
        break;
      }
    }

    for (size_t i = 0; i < batch; ++i) {
      cusfft::SparseSpectrum s = std::move(results[i]);
      if (s.size() > capacity) s = cusfft::trim_top_k(std::move(s), capacity);
      uint64_t* locs = locations + i * capacity;
      double* vals = values + 2 * i * capacity;
      for (size_t j = 0; j < s.size(); ++j) {
        locs[j] = s[j].loc;
        vals[2 * j] = s[j].val.real();
        vals[2 * j + 1] = s[j].val.imag();
      }
      counts[i] = s.size();
    }
  } catch (const std::invalid_argument&) {
    return CUSFFT_INVALID_ARGUMENT;
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_get_size(cusfft_handle h, size_t* n, size_t* k) {
  if (h == nullptr || n == nullptr || k == nullptr)
    return CUSFFT_INVALID_ARGUMENT;
  *n = h->params.n;
  *k = h->params.k;
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_set_device_count(cusfft_handle h, size_t devices) {
  if (h == nullptr || devices == 0) return CUSFFT_INVALID_ARGUMENT;
  h->device_count = devices;
  return h->rebuild();
}

cusfft_status cusfft_set_node_count(cusfft_handle h, size_t nodes) {
  if (h == nullptr || nodes == 0) return CUSFFT_INVALID_ARGUMENT;
  h->node_count = nodes;
  return h->rebuild();
}

cusfft_status cusfft_get_cluster_stats(cusfft_handle h,
                                       cusfft_cluster_stats* out) {
  if (h == nullptr || out == nullptr) return CUSFFT_INVALID_ARGUMENT;
  if (h->fleet == nullptr) return CUSFFT_INVALID_ARGUMENT;
  out->model_ms = h->fleet->model_ms;
  out->imbalance = h->fleet->imbalance;
  out->nic_stall_ms = h->fleet->nic_stall_ms;
  out->nic_queue_ms = h->fleet->nic_queue_ms;
  out->nic_bytes = h->fleet->nic_bytes;
  out->nic_transfers = h->fleet->nic_transfers;
  out->nodes = h->fleet->nodes;
  out->devices = h->fleet->devices;
  out->signals = h->fleet->signals;
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_set_pcie_staging(cusfft_handle h,
                                      cusfft_pcie_staging policy,
                                      size_t max_inflight) {
  if (h == nullptr) return CUSFFT_INVALID_ARGUMENT;
  cusfft::cusim::PcieStaging s;
  switch (policy) {
    case CUSFFT_STAGING_UNLIMITED:
      s = cusfft::cusim::PcieStaging::Unlimited();
      break;
    case CUSFFT_STAGING_ROUND_ROBIN:
      s = cusfft::cusim::PcieStaging::RoundRobin();
      break;
    case CUSFFT_STAGING_MAX_INFLIGHT:
      if (max_inflight == 0) return CUSFFT_INVALID_ARGUMENT;
      s = cusfft::cusim::PcieStaging::MaxInflight(
          static_cast<unsigned>(max_inflight));
      break;
    default:
      return CUSFFT_INVALID_ARGUMENT;
  }
  h->staging = s;
  if (h->group != nullptr) h->group->set_staging(s);
  if (h->cluster != nullptr) h->cluster->set_staging(s);
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_set_shard_policy(cusfft_handle h,
                                      cusfft_shard_policy policy) {
  if (h == nullptr) return CUSFFT_INVALID_ARGUMENT;
  switch (policy) {
    case CUSFFT_SHARD_COST_LPT:
      h->shard_policy = cusfft::gpu::ShardPolicy::kCostLpt;
      break;
    case CUSFFT_SHARD_UNIT_GREEDY:
      h->shard_policy = cusfft::gpu::ShardPolicy::kUnitGreedy;
      break;
    default:
      return CUSFFT_INVALID_ARGUMENT;
  }
  if (h->multi != nullptr) h->multi->set_shard_policy(h->shard_policy);
  if (h->cplan != nullptr) h->cplan->set_shard_policy(h->shard_policy);
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_get_fleet_stats(cusfft_handle h,
                                     cusfft_fleet_stats* out) {
  if (h == nullptr || out == nullptr) return CUSFFT_INVALID_ARGUMENT;
  if (h->fleet == nullptr) return CUSFFT_INVALID_ARGUMENT;
  out->model_ms = h->fleet->model_ms;
  out->imbalance = h->fleet->imbalance;
  out->pcie_stall_ms = h->fleet->pcie_stall_ms;
  out->devices = h->fleet->devices;
  out->signals = h->fleet->signals;
  out->pcie_queue_ms = h->fleet->pcie_queue_ms;
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_get_device_utilization(cusfft_handle h, size_t device,
                                            double* utilization) {
  if (h == nullptr || utilization == nullptr)
    return CUSFFT_INVALID_ARGUMENT;
  if (h->fleet == nullptr || device >= h->fleet->per_device.size())
    return CUSFFT_INVALID_ARGUMENT;
  *utilization = h->fleet->per_device[device].utilization;
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_profile_json(cusfft_handle h, char* buf, size_t cap,
                                  size_t* len) {
  if (h == nullptr || len == nullptr) return CUSFFT_INVALID_ARGUMENT;
  if (h->profile == nullptr) return CUSFFT_INVALID_ARGUMENT;
  try {
    const std::string doc = h->profile->chrome_trace_json();
    *len = doc.size() + 1;  // incl. NUL
    if (buf == nullptr) return CUSFFT_SUCCESS;  // size query
    if (cap < *len) return CUSFFT_INVALID_ARGUMENT;
    std::memcpy(buf, doc.c_str(), *len);
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_profile_write(cusfft_handle h, const char* path) {
  if (h == nullptr || path == nullptr) return CUSFFT_INVALID_ARGUMENT;
  if (h->profile == nullptr) return CUSFFT_INVALID_ARGUMENT;
  try {
    if (!h->profile->write(path)) return CUSFFT_INTERNAL_ERROR;
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

namespace {

/// Shared buf/cap/len protocol of the snapshot calls (identical to
/// cusfft_profile_json).
cusfft_status copy_out(const std::string& doc, char* buf, size_t cap,
                       size_t* len) {
  *len = doc.size() + 1;  // incl. NUL
  if (buf == nullptr) return CUSFFT_SUCCESS;  // size query
  if (cap < *len) return CUSFFT_INVALID_ARGUMENT;
  std::memcpy(buf, doc.c_str(), *len);
  return CUSFFT_SUCCESS;
}

}  // namespace

cusfft_status cusfft_metrics_json(char* buf, size_t cap, size_t* len) {
  if (len == nullptr) return CUSFFT_INVALID_ARGUMENT;
  try {
    return copy_out(cusfft::cusim::MetricsRegistry::global().expose_json(),
                    buf, cap, len);
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
}

cusfft_status cusfft_metrics_text(char* buf, size_t cap, size_t* len) {
  if (len == nullptr) return CUSFFT_INVALID_ARGUMENT;
  try {
    return copy_out(cusfft::cusim::MetricsRegistry::global().expose_text(),
                    buf, cap, len);
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
}

cusfft_status cusfft_metrics_write(const char* path,
                                   cusfft_metrics_format format) {
  if (path == nullptr) return CUSFFT_INVALID_ARGUMENT;
  if (format != CUSFFT_METRICS_JSON && format != CUSFFT_METRICS_PROMETHEUS)
    return CUSFFT_INVALID_ARGUMENT;
  try {
    auto& reg = cusfft::cusim::MetricsRegistry::global();
    const std::string doc = format == CUSFFT_METRICS_JSON
                                ? reg.expose_json()
                                : reg.expose_text();
    std::FILE* f = std::fopen(path, "wb");
    if (f == nullptr) return CUSFFT_INTERNAL_ERROR;
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    const bool closed = std::fclose(f) == 0;
    return ok && closed ? CUSFFT_SUCCESS : CUSFFT_INTERNAL_ERROR;
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
}

cusfft_status cusfft_metrics_reset(void) {
  try {
    cusfft::cusim::MetricsRegistry::global().reset();
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

}  // extern "C"

/// Owns the serving tier behind the cusfft_server handle (the Server is
/// neither copyable nor movable, so the handle constructs it in place).
struct cusfft_server_t {
  cusfft::serve::Server impl;
  explicit cusfft_server_t(const cusfft::serve::ServerConfig& c) : impl(c) {}
};

extern "C" {

cusfft_status cusfft_server_config_default(cusfft_server_config* out) {
  if (out == nullptr) return CUSFFT_INVALID_ARGUMENT;
  try {
    const cusfft::serve::ServerConfig cfg =
        cusfft::serve::ServerConfig::from_env();
    out->devices = cfg.devices;
    out->max_batch = cfg.max_batch;
    out->tenant_queue_depth = cfg.tenant_queue_depth;
    out->max_wait_latency_ms = cfg.max_wait_latency_ms;
    out->max_wait_throughput_ms = cfg.max_wait_throughput_ms;
  } catch (const std::invalid_argument&) {
    return CUSFFT_INVALID_ARGUMENT;
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_server_create(cusfft_server* out,
                                   const cusfft_server_config* cfg) {
  if (out == nullptr) return CUSFFT_INVALID_ARGUMENT;
  *out = nullptr;
  try {
    cusfft::serve::ServerConfig c;
    if (cfg != nullptr) {
      c.devices = cfg->devices;
      c.max_batch = cfg->max_batch;
      c.tenant_queue_depth = cfg->tenant_queue_depth;
      c.max_wait_latency_ms = cfg->max_wait_latency_ms;
      c.max_wait_throughput_ms = cfg->max_wait_throughput_ms;
    } else {
      c = cusfft::serve::ServerConfig::from_env();
    }
    *out = new cusfft_server_t(c);
  } catch (const std::invalid_argument&) {
    return CUSFFT_INVALID_ARGUMENT;
  } catch (const std::bad_alloc&) {
    return CUSFFT_ALLOC_FAILED;
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

namespace {

cusfft::serve::Server* unwrap(cusfft_server s) { return &s->impl; }

}  // namespace

cusfft_status cusfft_server_submit(cusfft_server s, const char* tenant,
                                   double arrival_ms, size_t n, size_t k,
                                   cusfft_slo_class slo, double deadline_ms,
                                   const double* input,
                                   uint64_t* request_id) {
  if (s == nullptr || tenant == nullptr || input == nullptr ||
      request_id == nullptr)
    return CUSFFT_INVALID_ARGUMENT;
  if (slo != CUSFFT_SLO_LATENCY && slo != CUSFFT_SLO_THROUGHPUT)
    return CUSFFT_INVALID_ARGUMENT;
  try {
    cusfft::serve::Request r;
    r.tenant = tenant;
    r.params.n = n;
    r.params.k = k;
    const auto* x = reinterpret_cast<const cusfft::cplx*>(input);
    r.x.assign(x, x + n);
    r.slo = slo == CUSFFT_SLO_LATENCY
                ? cusfft::serve::SloClass::kLatency
                : cusfft::serve::SloClass::kThroughput;
    if (deadline_ms > 0) r.deadline_ms = deadline_ms;
    *request_id = unwrap(s)->submit_at(arrival_ms, std::move(r));
  } catch (const std::invalid_argument&) {
    return CUSFFT_INVALID_ARGUMENT;
  } catch (const std::logic_error&) {
    return CUSFFT_INVALID_ARGUMENT;
  } catch (const std::bad_alloc&) {
    return CUSFFT_ALLOC_FAILED;
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_server_advance(cusfft_server s, double t_ms) {
  if (s == nullptr) return CUSFFT_INVALID_ARGUMENT;
  try {
    unwrap(s)->advance(t_ms);
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_server_drain(cusfft_server s) {
  if (s == nullptr) return CUSFFT_INVALID_ARGUMENT;
  try {
    unwrap(s)->drain();
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_server_outcome(cusfft_server s, uint64_t request_id,
                                    cusfft_request_outcome* out) {
  if (s == nullptr || out == nullptr) return CUSFFT_INVALID_ARGUMENT;
  try {
    switch (unwrap(s)->response(request_id).outcome) {
      case cusfft::serve::Outcome::kPending:
        *out = CUSFFT_REQUEST_PENDING;
        break;
      case cusfft::serve::Outcome::kCompleted:
        *out = CUSFFT_REQUEST_COMPLETED;
        break;
      case cusfft::serve::Outcome::kShed:
        *out = CUSFFT_REQUEST_SHED;
        break;
      case cusfft::serve::Outcome::kRejected:
        *out = CUSFFT_REQUEST_REJECTED;
        break;
    }
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_server_result(cusfft_server s, uint64_t request_id,
                                   uint64_t* locations, double* values,
                                   size_t* count, double* latency_ms) {
  if (s == nullptr || locations == nullptr || values == nullptr ||
      count == nullptr)
    return CUSFFT_INVALID_ARGUMENT;
  try {
    cusfft::serve::Response r = unwrap(s)->response(request_id);
    if (r.outcome != cusfft::serve::Outcome::kCompleted)
      return CUSFFT_INVALID_ARGUMENT;
    cusfft::SparseSpectrum spec = std::move(r.spectrum);
    if (spec.size() > *count)
      spec = cusfft::trim_top_k(std::move(spec), *count);
    for (size_t i = 0; i < spec.size(); ++i) {
      locations[i] = spec[i].loc;
      values[2 * i] = spec[i].val.real();
      values[2 * i + 1] = spec[i].val.imag();
    }
    *count = spec.size();
    if (latency_ms != nullptr) *latency_ms = r.latency_ms;
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_server_stats(cusfft_server s, cusfft_serve_stats* out) {
  if (s == nullptr || out == nullptr) return CUSFFT_INVALID_ARGUMENT;
  try {
    const cusfft::serve::GpuServeStats st = unwrap(s)->stats();
    out->submitted = st.submitted;
    out->completed = st.completed;
    out->shed = st.shed;
    out->rejected = st.rejected;
    out->batches = st.batches;
    out->max_queue_depth = st.max_queue_depth;
    out->virtual_ms = st.virtual_ms;
    out->sustained_qps = st.sustained_qps;
    out->latency_p50_ms = st.latency.p50_ms;
    out->latency_p99_ms = st.latency.p99_ms;
    out->throughput_p50_ms = st.throughput.p50_ms;
    out->throughput_p99_ms = st.throughput.p99_ms;
  } catch (...) {
    return CUSFFT_INTERNAL_ERROR;
  }
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_server_destroy(cusfft_server s) {
  delete s;
  return CUSFFT_SUCCESS;
}

cusfft_status cusfft_destroy(cusfft_handle h) {
  delete h;
  return CUSFFT_SUCCESS;
}

const char* cusfft_status_string(cusfft_status s) {
  switch (s) {
    case CUSFFT_SUCCESS:
      return "success";
    case CUSFFT_INVALID_ARGUMENT:
      return "invalid argument";
    case CUSFFT_ALLOC_FAILED:
      return "allocation failed";
    case CUSFFT_INTERNAL_ERROR:
      return "internal error";
  }
  return "unknown status";
}

}  // extern "C"
