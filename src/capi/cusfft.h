/* C API for the cusFFT library — a cuFFT-style plan/execute/destroy
 * interface so C codebases (and FFI users) can adopt the sparse FFT
 * without touching C++. All functions return CUSFFT_SUCCESS (0) or a
 * negative error code; no exceptions cross this boundary.
 *
 *   cusfft_handle h;
 *   cusfft_plan(&h, 1 << 20, 50, CUSFFT_BACKEND_GPU_OPTIMIZED);
 *   cusfft_execute(h, in_interleaved, coeffs, locs, &count);
 *   cusfft_destroy(h);
 */
#ifndef CUSFFT_C_API_H_
#define CUSFFT_C_API_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct cusfft_plan_t* cusfft_handle;

typedef enum {
  CUSFFT_BACKEND_SERIAL = 0,       /* reference CPU implementation */
  CUSFFT_BACKEND_PSFFT = 1,        /* multicore CPU */
  CUSFFT_BACKEND_GPU_BASELINE = 2, /* Section IV kernels (simulated K20x) */
  CUSFFT_BACKEND_GPU_OPTIMIZED = 3 /* Section V kernels (simulated K20x) */
} cusfft_backend;

typedef enum {
  CUSFFT_SUCCESS = 0,
  CUSFFT_INVALID_ARGUMENT = -1, /* bad n/k/backend/null pointer */
  CUSFFT_ALLOC_FAILED = -2,     /* out of (device) memory */
  CUSFFT_INTERNAL_ERROR = -3
} cusfft_status;

/* Creates a plan for signals of length n (power of two >= 16) expecting
 * about k large coefficients. */
cusfft_status cusfft_plan(cusfft_handle* out, size_t n, size_t k,
                          cusfft_backend backend);

/* Optional: fix the randomization seed (plans are deterministic per seed).
 * Must be called before the first execute; rebuilds the internal state. */
cusfft_status cusfft_set_seed(cusfft_handle h, uint64_t seed);

/* Which sparse-FFT algorithm the plan runs. CUSFFT is the paper's
 * bucket-hashing sFFT (the default); FFAST is the aliasing/peeling
 * backend, which wins at low k; AUTO defers to the crossover picker. */
typedef enum {
  CUSFFT_ALGO_CUSFFT = 0,
  CUSFFT_ALGO_FFAST = 1,
  CUSFFT_ALGO_AUTO = 2
} cusfft_algorithm;

/* Selects the algorithm. Must be called before the first execute; rebuilds
 * the internal state. On GPU backends AUTO consults the crossover picker
 * (mode from CUSFFT_AUTOPICK: "measured" calibrates each shape once by
 * running both backends, "modeled" compares analytic costs); on CPU
 * backends AUTO runs the default bucket-hashing algorithm, and FFAST runs
 * the reference CPU implementation. The CUSFFT_ALGO environment variable
 * ("cusfft" / "ffast" / "auto") overrides this setting; both variables
 * are re-read on every rebuild and every multi-device batch (never
 * latched), and malformed values fail the call with
 * CUSFFT_INVALID_ARGUMENT. */
cusfft_status cusfft_set_algorithm(cusfft_handle h, cusfft_algorithm algo);

/* Runs the transform. `input` is n interleaved (re, im) doubles.
 * On entry *count is the capacity of locations/values (pairs); on exit it
 * is the number of recovered coefficients (truncated to the capacity,
 * largest magnitudes first). `values` is interleaved (re, im). */
cusfft_status cusfft_execute(cusfft_handle h, const double* input,
                             uint64_t* locations, double* values,
                             size_t* count);

/* Batch (throughput) variant. `inputs` is `batch` signals of n interleaved
 * (re, im) doubles each, laid out back to back (stride 2*n doubles).
 * `capacity` is the per-signal capacity of the output arrays: signal i
 * writes at most `capacity` pairs into locations + i*capacity and
 * values + 2*i*capacity, and counts[i] receives the number written
 * (truncated to capacity, largest magnitudes first). GPU backends reuse
 * one plan's device state across the whole batch; CPU backends loop. */
cusfft_status cusfft_execute_many(cusfft_handle h, const double* inputs,
                                  size_t batch, size_t capacity,
                                  uint64_t* locations, double* values,
                                  size_t* counts);

/* Batch scheduling toggle for GPU backends. Nonzero (the default):
 * cusfft_execute_many overlaps signal i+1's transfer + binning kernels
 * with signal i's selection/estimation kernels on the modeled timeline
 * (stream-pipelined). Zero: signals run one at a time. Results are
 * bit-identical either way; only the modeled batch time changes. CPU
 * backends accept and ignore the call. */
cusfft_status cusfft_set_batch_pipeline(cusfft_handle h, int enable);

/* Plan introspection. */
cusfft_status cusfft_get_size(cusfft_handle h, size_t* n, size_t* k);

/* ---- Multi-device fleet (GPU backends) ----
 * Shards each cusfft_execute_many batch across `devices` simulated GPUs
 * (one host thread team per device, the stream pipeline live inside each
 * shard, PCIe copies contending for the shared host link). Results stay
 * in input order and bit-identical to the single-device path; only the
 * modeled batch time changes. devices == 1 (the default) restores the
 * single-device plan. Rebuilds the internal state, so call before the
 * first execute. CPU backends accept and ignore the setting. */
cusfft_status cusfft_set_device_count(cusfft_handle h, size_t devices);

/* Root-complex admission policy for the fleet's H2D/D2H copies.
 * UNLIMITED (the default): every in-flight copy splits host-link
 * bandwidth. ROUND_ROBIN: one copy at a time, devices admitted in
 * rotation. MAX_INFLIGHT: at most `max_inflight` concurrent copies.
 * Staged policies stagger the shards' bulk uploads so the first-admitted
 * device's kernels start sooner; total bytes moved are identical. Takes
 * effect on the next execute; a single device is unaffected. CPU
 * backends accept and ignore the call. */
typedef enum {
  CUSFFT_STAGING_UNLIMITED = 0,
  CUSFFT_STAGING_ROUND_ROBIN = 1,
  CUSFFT_STAGING_MAX_INFLIGHT = 2
} cusfft_pcie_staging;

/* `max_inflight` is only read for CUSFFT_STAGING_MAX_INFLIGHT (must be
 * >= 1 there; ignored otherwise). */
cusfft_status cusfft_set_pcie_staging(cusfft_handle h,
                                      cusfft_pcie_staging policy,
                                      size_t max_inflight);

/* How the fleet assigns signals to devices. COST_LPT (the default):
 * per-signal analytic cost model, longest-processing-time-first.
 * UNIT_GREEDY: the legacy uniform 1/mem_bandwidth weighting (every
 * signal costs the same). Takes effect on the next execute. CPU
 * backends accept and ignore the call. */
typedef enum {
  CUSFFT_SHARD_COST_LPT = 0,
  CUSFFT_SHARD_UNIT_GREEDY = 1
} cusfft_shard_policy;

cusfft_status cusfft_set_shard_policy(cusfft_handle h,
                                      cusfft_shard_policy policy);

/* Fleet-level modeled timing of the most recent execute/execute_many on
 * a GPU backend (whatever the device count — a single device reports
 * imbalance 1.0 and zero PCIe stalls). */
typedef struct {
  double model_ms;      /* merged fleet makespan (shared time origin) */
  double imbalance;     /* max/mean busy-device finish; 1.0 = balanced */
  double pcie_stall_ms; /* summed host-link contention dilation */
  size_t devices;
  size_t signals;
  double pcie_queue_ms; /* summed staging admission wait (0 unlimited) */
} cusfft_fleet_stats;

/* CUSFFT_INVALID_ARGUMENT when no GPU batch has run yet (or on a CPU
 * backend). */
cusfft_status cusfft_get_fleet_stats(cusfft_handle h,
                                     cusfft_fleet_stats* out);

/* Per-device utilization of the last run: device `device`'s finish time
 * over the fleet makespan (0 for a device that received no signals).
 * CUSFFT_INVALID_ARGUMENT when out of range or no run yet. */
cusfft_status cusfft_get_device_utilization(cusfft_handle h, size_t device,
                                            double* utilization);

/* ---- Multi-node cluster (GPU backends) ----
 * Stacks the fleet onto `nodes` simulated hosts: each node owns
 * cusfft_set_device_count devices behind its own PCIe root complex, and
 * the nodes are joined by a modeled NIC fabric (bandwidth, per-message
 * latency, and contention distinct from PCIe). Batches shard across
 * nodes by the analytic cost model plus a NIC staging term (node 0 is
 * co-located with the data and pays none); results stay in input order
 * and bit-identical to the single-node path. nodes == 1 (the default)
 * restores the plain fleet. Rebuilds the internal state, so call before
 * the first execute. CPU backends accept and ignore the setting. */
cusfft_status cusfft_set_node_count(cusfft_handle h, size_t nodes);

/* Cluster-level modeled timing of the most recent execute/execute_many
 * on a GPU backend (whatever the node count — a single node reports
 * nodes == 1, imbalance 1.0, and zero NIC time). */
typedef struct {
  double model_ms;     /* merged cluster makespan (shared time origin) */
  double imbalance;    /* max/mean busy-node finish; 1.0 = balanced */
  double nic_stall_ms; /* summed fabric-contention dilation */
  double nic_queue_ms; /* summed NIC port-FIFO admission wait */
  double nic_bytes;    /* bytes that crossed the fabric */
  size_t nic_transfers;
  size_t nodes;
  size_t devices; /* total, across nodes */
  size_t signals;
} cusfft_cluster_stats;

/* CUSFFT_INVALID_ARGUMENT when no GPU batch has run yet (or on a CPU
 * backend). */
cusfft_status cusfft_get_cluster_stats(cusfft_handle h,
                                       cusfft_cluster_stats* out);

/* ---- Profiling (GPU backends) ----
 * After an execute/execute_many on a GPU backend the plan retains a
 * capture profile of the run: a chrome://tracing JSON document (loadable
 * at chrome://tracing or ui.perfetto.dev) with one track per stream plus
 * a PCIe track, and the structured per-kernel/per-phase/allocation
 * telemetry embedded under its top-level "profile" key. See
 * docs/PROFILING.md for the schema.
 *
 * cusfft_profile_json copies the document into `buf` (capacity `cap`
 * bytes) and NUL-terminates it. `*len` always receives the required
 * buffer size in bytes, including the terminator; pass buf == NULL (or an
 * insufficient cap) to query the size first — the call then returns
 * CUSFFT_SUCCESS without copying when buf is NULL, or
 * CUSFFT_INVALID_ARGUMENT when cap is too small. Returns
 * CUSFFT_INVALID_ARGUMENT when no profile is available (CPU backend, or
 * no execute yet). */
cusfft_status cusfft_profile_json(cusfft_handle h, char* buf, size_t cap,
                                  size_t* len);

/* Writes the same document to `path`. CUSFFT_INTERNAL_ERROR on I/O
 * failure; CUSFFT_INVALID_ARGUMENT when no profile is available. */
cusfft_status cusfft_profile_write(cusfft_handle h, const char* path);

/* ---- Always-on metrics (process-wide, no handle) ----
 * Every execute on a GPU backend feeds a process-wide registry of
 * counters, gauges, and latency histograms (cusim::MetricsRegistry; see
 * docs/PROFILING.md, "Capture vs. continuous metrics"). These calls
 * expose a point-in-time snapshot; unlike the capture profile above they
 * work across plans and never require a prior execute (an untouched
 * process exposes an empty-but-valid document).
 *
 * cusfft_metrics_json copies the JSON snapshot (schema
 * "cusfft-metrics-v1") into `buf` with the same buf/cap/len protocol as
 * cusfft_profile_json: `*len` always receives the required size incl.
 * NUL; buf == NULL queries the size, an insufficient cap returns
 * CUSFFT_INVALID_ARGUMENT. cusfft_metrics_text is the same snapshot in
 * Prometheus text exposition format. */
cusfft_status cusfft_metrics_json(char* buf, size_t cap, size_t* len);
cusfft_status cusfft_metrics_text(char* buf, size_t cap, size_t* len);

typedef enum {
  CUSFFT_METRICS_JSON = 0,      /* "cusfft-metrics-v1" JSON document */
  CUSFFT_METRICS_PROMETHEUS = 1 /* Prometheus text exposition format */
} cusfft_metrics_format;

/* Writes one snapshot to `path` in the requested format.
 * CUSFFT_INTERNAL_ERROR on I/O failure. */
cusfft_status cusfft_metrics_write(const char* path,
                                   cusfft_metrics_format format);

/* Zeroes every counter/gauge/histogram in the registry (a new baseline
 * for the next scrape window). Instruments stay registered. */
cusfft_status cusfft_metrics_reset(void);

/* ---- Multi-tenant serving tier (deterministic virtual clock) ----
 * A cusfft_server wraps cusfft::serve::Server: per-tenant submissions
 * with a latency- or throughput-class SLO and an optional deadline,
 * bounded per-tenant admission (overflow is rejected immediately, never
 * blocked), and a dynamic batcher that coalesces pending requests into
 * mixed-shape fleet batches (shape-keyed plan cache shared across
 * tenants). The C surface exposes the virtual-clock drive: submissions
 * carry a nondecreasing arrival time in modeled milliseconds and
 * cusfft_server_advance/_drain launch the batches, so replays are
 * bit-reproducible. Every request terminates in exactly one of
 * {completed, shed, rejected}. */
typedef struct cusfft_server_t* cusfft_server;

typedef enum {
  CUSFFT_SLO_LATENCY = 0,   /* short batch-close window, preempts */
  CUSFFT_SLO_THROUGHPUT = 1 /* long accumulation window */
} cusfft_slo_class;

typedef enum {
  CUSFFT_REQUEST_PENDING = 0,
  CUSFFT_REQUEST_COMPLETED = 1,
  CUSFFT_REQUEST_SHED = 2,    /* deadline expired before launch */
  CUSFFT_REQUEST_REJECTED = 3 /* per-tenant queue-depth backpressure */
} cusfft_request_outcome;

typedef struct {
  size_t devices;            /* simulated fleet size, >= 1 */
  size_t max_batch;          /* size batch-close trigger, >= 1 */
  size_t tenant_queue_depth; /* per-tenant admission bound, >= 1 */
  double max_wait_latency_ms;    /* latency-class close window */
  double max_wait_throughput_ms; /* throughput-class close window */
} cusfft_server_config;

/* Fills `out` with the library defaults overlaid with the CUSFFT_SERVE_*
 * environment knobs (re-read on every call; malformed values return
 * CUSFFT_INVALID_ARGUMENT). */
cusfft_status cusfft_server_config_default(cusfft_server_config* out);

/* cfg == NULL uses cusfft_server_config_default(). */
cusfft_status cusfft_server_create(cusfft_server* out,
                                   const cusfft_server_config* cfg);

/* Submits one request for `tenant` arriving at virtual time `arrival_ms`
 * (nondecreasing across submissions; clamped up to the server clock).
 * `input` is n interleaved (re, im) doubles; n a power of two >= 16.
 * `deadline_ms` is relative to arrival; <= 0 means none. `request_id`
 * receives the id — check cusfft_server_outcome for an immediate
 * backpressure rejection. */
cusfft_status cusfft_server_submit(cusfft_server s, const char* tenant,
                                   double arrival_ms, size_t n, size_t k,
                                   cusfft_slo_class slo, double deadline_ms,
                                   const double* input,
                                   uint64_t* request_id);

/* Launches every batch that closes up to virtual time t_ms. */
cusfft_status cusfft_server_advance(cusfft_server s, double t_ms);

/* Flushes the queue (remaining batches launch back to back). */
cusfft_status cusfft_server_drain(cusfft_server s);

cusfft_status cusfft_server_outcome(cusfft_server s, uint64_t request_id,
                                    cusfft_request_outcome* out);

/* Copies a completed request's spectrum with the cusfft_execute output
 * protocol: on entry *count is the capacity of locations/values (pairs),
 * on exit the number written (largest magnitudes first). `latency_ms`
 * (optional, may be NULL) receives the modeled queue+execute latency.
 * CUSFFT_INVALID_ARGUMENT unless the request completed. */
cusfft_status cusfft_server_result(cusfft_server s, uint64_t request_id,
                                   uint64_t* locations, double* values,
                                   size_t* count, double* latency_ms);

typedef struct {
  size_t submitted;
  size_t completed;
  size_t shed;
  size_t rejected;
  size_t batches;
  size_t max_queue_depth; /* high-water pending count, all tenants */
  double virtual_ms;      /* serving horizon on the modeled clock */
  double sustained_qps;   /* completed / virtual seconds */
  double latency_p50_ms;  /* latency-class completions */
  double latency_p99_ms;
  double throughput_p50_ms; /* throughput-class completions */
  double throughput_p99_ms;
} cusfft_serve_stats;

cusfft_status cusfft_server_stats(cusfft_server s, cusfft_serve_stats* out);

cusfft_status cusfft_server_destroy(cusfft_server s);

cusfft_status cusfft_destroy(cusfft_handle h);

/* Human-readable name for a status code (static storage). */
const char* cusfft_status_string(cusfft_status s);

#ifdef __cplusplus
}
#endif

#endif /* CUSFFT_C_API_H_ */
