// "Parallel FFTW" comparator: the dense-FFT CPU baseline of Fig. 5(a)/(d),
// backed by this repo's planned FFT with a thread pool, plus the roofline
// model for the Table-II CPU.
#pragma once

#include <span>

#include "core/thread_pool.hpp"
#include "core/types.hpp"
#include "perfmodel/cpu_model.hpp"

namespace cusfft::psfft {

struct DenseFftResult {
  double model_ms = 0;  // modeled on the Table-II CPU (6 threads)
  double host_ms = 0;   // functional wall time on this host
};

/// Computes the full dense forward FFT of x into out (both length n) with
/// worksharing across `pool`, and models the time FFTW-with-6-threads would
/// take on the paper's CPU.
DenseFftResult dense_fft_parallel(
    std::span<const cplx> x, std::span<cplx> out, ThreadPool& pool,
    const perfmodel::CpuSpec& spec = perfmodel::CpuSpec::e5_2640());

}  // namespace cusfft::psfft
