#include "psfft/fftw_baseline.hpp"

#include <algorithm>
#include <cmath>

#include "core/timer.hpp"
#include "fft/fft.hpp"

namespace cusfft::psfft {

DenseFftResult dense_fft_parallel(std::span<const cplx> x,
                                  std::span<cplx> out, ThreadPool& pool,
                                  const perfmodel::CpuSpec& spec) {
  DenseFftResult r;
  WallTimer wall;
  fft::Plan plan(x.size(), fft::Direction::kForward);
  std::copy(x.begin(), x.end(), out.begin());
  plan.execute_parallel(out, pool);
  r.host_ms = wall.ms();

  // FFTW's cache-oblivious decomposition streams the array through DRAM
  // only ceil(log n / log cache_fit) times, not once per radix-2 stage —
  // model DRAM traffic accordingly (flops stay the full 5 n log2 n).
  const auto c = plan.cost();
  const double n = static_cast<double>(x.size());
  const double cache_elems =
      std::max(2.0, static_cast<double>(spec.l3_bytes) / 16.0);
  const double passes =
      std::max(1.0, std::ceil(std::log2(n) / std::log2(cache_elems)));
  // FFTW sustains ~15% of the Sandy Bridge AVX peak on large double-complex
  // transforms (twiddle loads, shuffles, no FMA); scale the flop roof so the
  // modeled rate matches the ~12 GFLOP/s measured in the FFTW literature.
  const double fftw_flop_efficiency = 0.15;
  perfmodel::CpuWork w{"dense_fft", 32.0 * n * (passes + 1.0), 0, 0,
                       c.flops / fftw_flop_efficiency,
                       static_cast<double>(spec.cores)};
  r.model_ms = perfmodel::CpuModel(spec).phase_cost_s(w) * 1e3;
  return r;
}

}  // namespace cusfft::psfft
