// PsFFT — the authors' multicore-CPU parallel sparse FFT (paper ref [6],
// the Fig. 5(e) comparator). Work-shared over a thread pool with the same
// decomposition the OpenMP original uses: binning partitioned by bucket
// (each worker owns a bucket range and walks its strided taps), estimation
// partitioned by candidate.
//
// Besides running functionally (real threads, real data), every phase
// accumulates roofline counters so the paper's 6-core Sandy Bridge
// (Table II) timing can be modeled on any host (DESIGN.md §3).
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>

#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "core/types.hpp"
#include "perfmodel/cpu_model.hpp"
#include "sfft/params.hpp"

namespace cusfft::psfft {

struct CpuExecStats {
  double model_ms = 0;  // modeled time on the Table-II CPU
  double host_ms = 0;   // wall time on this host (functional run)
  std::map<std::string, double> step_model_ms;
};

class PsfftPlan {
 public:
  /// `spec` parameterizes the model (default: Table II's E5-2640).
  PsfftPlan(sfft::Params params, ThreadPool& pool,
            perfmodel::CpuSpec spec = perfmodel::CpuSpec::e5_2640());
  ~PsfftPlan();
  PsfftPlan(PsfftPlan&&) noexcept;
  PsfftPlan& operator=(PsfftPlan&&) noexcept;
  PsfftPlan(const PsfftPlan&) = delete;
  PsfftPlan& operator=(const PsfftPlan&) = delete;

  const sfft::Params& params() const;
  std::size_t buckets() const;

  SparseSpectrum execute(std::span<const cplx> x,
                         CpuExecStats* stats = nullptr) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cusfft::psfft
