#include "psfft/psfft.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/modmath.hpp"
#include "core/rng.hpp"
#include "fft/fft.hpp"
#include "sfft/comb.hpp"
#include "sfft/serial.hpp"
#include "sfft/steps.hpp"
#include "signal/filter.hpp"

namespace cusfft::psfft {

using sfft::LoopPerm;

struct PsfftPlan::Impl {
  sfft::Params p;
  ThreadPool* pool = nullptr;
  perfmodel::CpuModel model;
  std::size_t n = 0, B = 0, L = 0, w_pad = 0, rounds = 0, mask = 0;
  std::shared_ptr<const signal::FlatFilter> filter;
  fft::Plan bfft;

  Impl(sfft::Params params, ThreadPool& pl, perfmodel::CpuSpec spec)
      : p((params.validate(), std::move(params))),
        pool(&pl),
        model(spec),
        n(p.n),
        B(p.buckets()),
        L(p.total_loops()),
        mask(n - 1),
        filter(signal::get_flat_filter(n, B, p.filter)),
        bfft(B, fft::Direction::kForward) {
    w_pad = filter->time.size();
    rounds = w_pad / B;
  }

  /// Steps 1-2 work-shared by bucket range (each worker accumulates its
  /// buckets over the strided taps — the OpenMP loop-splitting of [6]).
  void bin_parallel(std::span<const cplx> x, const LoopPerm& perm,
                    std::span<cplx> z) const {
    const u64 ai = perm.ai, tau = perm.tau;
    pool->parallel_for(B, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t b = lo; b < hi; ++b) {
        cplx acc{0.0, 0.0};
        for (std::size_t j = 0; j < rounds; ++j) {
          const u64 off = b + B * j;
          const u64 index = (tau + off * ai) & mask;
          acc += x[index] * filter->time[off];
        }
        z[b] = acc;
      }
    });
  }
};

PsfftPlan::PsfftPlan(sfft::Params params, ThreadPool& pool,
                     perfmodel::CpuSpec spec)
    : impl_(std::make_unique<Impl>(std::move(params), pool, spec)) {}

PsfftPlan::~PsfftPlan() = default;
PsfftPlan::PsfftPlan(PsfftPlan&&) noexcept = default;
PsfftPlan& PsfftPlan::operator=(PsfftPlan&&) noexcept = default;

const sfft::Params& PsfftPlan::params() const { return impl_->p; }
std::size_t PsfftPlan::buckets() const { return impl_->B; }

SparseSpectrum PsfftPlan::execute(std::span<const cplx> x,
                                  CpuExecStats* stats) const {
  const Impl& im = *impl_;
  if (x.size() != im.n)
    throw std::invalid_argument("PsfftPlan::execute: signal size mismatch");
  WallTimer wall;

  const double cores = static_cast<double>(im.model.spec().cores);
  const double ws = 16.0 * static_cast<double>(im.n);  // signal footprint
  perfmodel::CpuWork w_bin{"perm_filter", 0, 0, ws, 0, cores};
  perfmodel::CpuWork w_fft{"subfft", 0, 0, 0, 0, cores};
  perfmodel::CpuWork w_cut{"cutoff", 0, 0, 0, 0, 1};
  perfmodel::CpuWork w_loc{"loc", 0, 0, ws / 4, 0, cores};  // u32 score
  perfmodel::CpuWork w_est{"estimate", 0, 0, ws, 0, cores};

  Rng rng(im.p.seed);
  const auto perms = sfft::draw_loop_perms(im.n, im.L, rng);

  sfft::CombFilter comb;
  if (im.p.comb) {
    std::vector<u64> taus(im.p.comb_rounds);
    for (auto& t : taus) t = rng.next_below(im.n);
    comb = sfft::run_comb_filter(x, im.p.comb_w(), im.p.comb_keep(), taus);
    // One W-point FFT plus W scattered loads per round.
    const double W = static_cast<double>(comb.W);
    w_loc.random_accesses += W * static_cast<double>(im.p.comb_rounds);
    w_loc.flops += 5.0 * W * std::log2(W) *
                   static_cast<double>(im.p.comb_rounds);
  }

  std::vector<cvec> bucket_sets(im.L, cvec(im.B));
  std::vector<std::uint8_t> score(im.n, 0);
  std::vector<u64> hits;
  const auto threshold = static_cast<std::uint8_t>(im.p.threshold());
  const std::size_t cutoff = im.p.cutoff();

  for (std::size_t r = 0; r < im.L; ++r) {
    im.bin_parallel(x, perms[r], bucket_sets[r]);
    // Counters: one scattered signal load per tap; filter taps and bucket
    // writes stream.
    w_bin.random_accesses += static_cast<double>(im.w_pad);
    w_bin.streamed_bytes += 16.0 * (im.w_pad + im.B);
    w_bin.flops += 8.0 * static_cast<double>(im.w_pad);

    im.bfft.execute(bucket_sets[r]);
    const auto c = im.bfft.cost();
    w_fft.streamed_bytes += c.bytes;
    w_fft.flops += c.flops;

    if (r < im.p.loops_loc) {
      const auto selected = sfft::top_buckets(bucket_sets[r], cutoff);
      w_cut.streamed_bytes += 16.0 * static_cast<double>(im.B);
      w_cut.flops += 3.0 * static_cast<double>(im.B);

      sfft::vote_locations(selected, perms[r], im.n, im.B, threshold, score,
                           hits, comb.approved);
      w_loc.random_accesses +=
          static_cast<double>(selected.size() * (im.n / im.B));
      w_loc.flops += 4.0 * static_cast<double>(selected.size() *
                                               (im.n / im.B));
    }
  }

  // Step 6: estimation, work-shared by candidate.
  SparseSpectrum out(hits.size());
  im.pool->parallel_for(hits.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      out[i] = {hits[i], sfft::estimate_coef(hits[i], perms, bucket_sets,
                                             im.filter->freq, im.n, im.B)};
  });
  w_est.random_accesses += 2.0 * static_cast<double>(hits.size() * im.L);
  w_est.flops += 60.0 * static_cast<double>(hits.size() * im.L);

  std::sort(out.begin(), out.end(),
            [](const SparseCoef& a, const SparseCoef& b) {
              return a.loc < b.loc;
            });

  if (stats) {
    stats->host_ms = wall.ms();
    stats->model_ms = 0;
    stats->step_model_ms.clear();
    const std::pair<const char*, const perfmodel::CpuWork*> phases[] = {
        {sfft::step::kPermFilter, &w_bin}, {sfft::step::kSubFft, &w_fft},
        {sfft::step::kCutoff, &w_cut},     {sfft::step::kLocRecover, &w_loc},
        {sfft::step::kEstimate, &w_est}};
    for (const auto& [name, work] : phases) {
      const double ms = im.model.phase_cost_s(*work) * 1e3;
      stats->step_model_ms[name] = ms;
      stats->model_ms += ms;
    }
  }
  return out;
}

}  // namespace cusfft::psfft
